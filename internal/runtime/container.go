// Package runtime assembles BitDew's stable-node side: the service
// container running the four D* services (Data Catalog, Data Repository,
// Data Transfer, Data Scheduler) together with the protocol back-ends (an
// FTP-like server, an HTTP server and a swarm tracker) over shared
// persistent storage. The paper's fault model for these hosts is the
// transient fault — an administrator restarts them — which the container
// supports through the db package's WAL/snapshot replay.
package runtime

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"time"

	"bitdew/internal/catalog"
	"bitdew/internal/data"
	"bitdew/internal/db"
	"bitdew/internal/protocols/ftp"
	"bitdew/internal/protocols/httpx"
	"bitdew/internal/protocols/swarm"
	"bitdew/internal/rebalance"
	"bitdew/internal/repl"
	"bitdew/internal/repository"
	"bitdew/internal/rpc"
	"bitdew/internal/scheduler"
	"bitdew/internal/transfer"
)

// ContainerConfig configures a service container.
type ContainerConfig struct {
	// Addr is the rpc listen address; empty serves in-process only (access
	// the container through Mux with core.ConnectLocal).
	Addr string
	// StateDir makes the whole service plane durable and restartable: the
	// meta-data of every D* service (catalog data + locators, scheduler
	// placements, repository endpoints) is checkpointed under
	// StateDir/meta (snapshot + write-ahead log, compacted periodically)
	// and repository content lives under StateDir/data, so a container
	// rebuilt over the same directory recovers all of it. Ignored for the
	// store when Store is set, and for the content when Backend is set.
	StateDir string
	// CompactEvery overrides the StateDir store's WAL compaction threshold
	// (records between automatic snapshot+rotation; 0 keeps the default).
	CompactEvery int
	// Store is the meta-data database (defaults to an embedded RowStore;
	// all four services persist through it).
	Store db.Store
	// Backend is the repository storage (defaults to in-memory).
	Backend repository.Backend
	// DisableFTP / DisableHTTP / DisableSwarm turn protocol servers off.
	DisableFTP   bool
	DisableHTTP  bool
	DisableSwarm bool
	// FTPThrottle caps the ftp server's per-connection rate in bytes/s
	// (0 = unthrottled); benchmarks use it to emulate constrained uplinks.
	FTPThrottle int64
	// RPCOptions configure the rpc server (latency injection, serve
	// limits); benchmarks use them to model a service host of finite
	// capacity from one machine.
	RPCOptions []rpc.ServerOption
	// Listener, when set, serves rpc on this pre-bound listener instead of
	// Addr. A replicated plane pre-listens every shard so the full
	// membership table exists before the first container boots.
	Listener net.Listener
	// Replication, when set with Replicas >= 2, wires this container into
	// the shard-replication plane: its meta store is feed-wrapped and
	// shipped to its successor shards, the ownership gate guards its key
	// ranges, and the repl service (failover, rejoin) is mounted.
	Replication *ReplicationConfig
	// Rebalance, when set, wires this container into the elastic-membership
	// plane: its meta store is feed-wrapped behind the rebalance ownership
	// guard and the rebal service (Stage/Cutover/Commit/Install) is
	// mounted, so the plane can grow and shrink under live traffic.
	// Mutually exclusive with Replication (replicated planes move ranges
	// through repl's ownership protocol instead).
	Rebalance *RebalanceConfig
}

// RebalanceConfig is the per-shard elastic-membership wiring of a
// container.
type RebalanceConfig struct {
	// Shard is this container's index; Shards the plane's shard count at
	// boot (a persisted committed epoch overrides it on restart).
	Shard  int
	Shards int
	// OnCommit observes every committed membership change; the sharded
	// runtime publishes it through the ring table.
	OnCommit func(epoch uint64, addrs []string)
	// DialOpts contributes extra dial options per outbound peer address.
	DialOpts func(addr string) []rpc.DialOption
	// Logf receives rebalance life-cycle events.
	Logf func(format string, args ...any)
}

// ReplicationConfig is the per-shard replication wiring of a container.
type ReplicationConfig struct {
	// Shard is this container's index in Addrs; Addrs is the full
	// membership table in placement order.
	Shard int
	Addrs []string
	// Replicas is R: each key range lives on its home shard plus R-1
	// successors on the placement circle.
	Replicas int
	// ProbeTimeout bounds each failover liveness probe (0 = default).
	ProbeTimeout time.Duration
	// SkipBootCheck may be set only on a coordinated fresh boot of the
	// whole plane (nobody can have promoted anything yet); restarts must
	// always resolve ownership by probing.
	SkipBootCheck bool
	// DialOpts contributes extra dial options per outbound peer address —
	// the fault-injection hook of the failover crash-point tests.
	DialOpts func(addr string) []rpc.DialOption
	// Logf receives replication life-cycle events.
	Logf func(format string, args ...any)
}

// Container is one stable service host.
type Container struct {
	Mux *rpc.Mux

	DC *catalog.Service
	DR *repository.Service
	DT *transfer.Service
	DS *scheduler.Service

	FTP     *ftp.Server
	HTTP    *httpx.Server
	Tracker *swarm.Tracker

	rpcServer *rpc.Server
	// ownStore is the durable store this container opened from StateDir
	// (nil when the caller supplied Store); Close flushes and closes it.
	ownStore *db.DurableStore
	// node and ownFeed exist only on replicated containers: the feed wraps
	// the meta store (its stream ships to the successor shards) and node is
	// the shard's replication endpoint. rnode is the elastic-membership
	// counterpart (feed-wrapped too, mutually exclusive with node).
	node    *repl.Node
	rnode   *rebalance.Node
	ownFeed *db.FeedStore

	mu      sync.Mutex
	seeders map[data.UID]*swarm.Peer
	closed  bool
}

// NewContainer builds and starts a service container.
func NewContainer(cfg ContainerConfig) (*Container, error) {
	var ownStore *db.DurableStore
	if cfg.Store == nil {
		if cfg.StateDir != "" {
			var err error
			ownStore, err = db.OpenDurable(filepath.Join(cfg.StateDir, "meta"),
				db.WithCompactEvery(cfg.CompactEvery),
				db.WithCompactInterval(time.Minute))
			if err != nil {
				return nil, fmt.Errorf("runtime: %w", err)
			}
			cfg.Store = ownStore
		} else {
			cfg.Store = db.NewRowStore()
		}
	}
	if cfg.Backend == nil {
		if cfg.StateDir != "" {
			backend, err := repository.NewDirBackend(filepath.Join(cfg.StateDir, "data"))
			if err != nil {
				if ownStore != nil {
					ownStore.Close()
				}
				return nil, fmt.Errorf("runtime: %w", err)
			}
			cfg.Backend = backend
		} else {
			cfg.Backend = repository.NewMemBackend()
		}
	}
	var (
		ownFeed *db.FeedStore
		node    *repl.Node
		rnode   *rebalance.Node
		c       *Container // late-bound: replication hooks capture it
	)
	fail := func(err error) (*Container, error) {
		if node != nil {
			node.Stop()
		}
		if rnode != nil {
			rnode.Stop()
		}
		if ownFeed != nil {
			ownFeed.Close()
		}
		if ownStore != nil {
			ownStore.Close()
		}
		return nil, fmt.Errorf("runtime: %w", err)
	}
	if cfg.Replication != nil && cfg.Replication.Replicas > 1 && cfg.Rebalance != nil {
		return fail(fmt.Errorf("a container replicates or rebalances, not both — replicated planes move ranges through repl"))
	}
	if cfg.Replication != nil && cfg.Replication.Replicas > 1 {
		rc := cfg.Replication
		var err error
		// The stream epoch is minted per boot: a restarted shard recovers
		// its rows from disk but not its sequence counter, and the fresh
		// epoch is what tells its replicas to resync from a snapshot.
		ownFeed, err = db.NewFeedStore(cfg.Store, uint64(time.Now().UnixNano()))
		if err != nil {
			return fail(err)
		}
		backend := cfg.Backend
		node, err = repl.NewNode(repl.Config{
			Shard:          rc.Shard,
			Addrs:          rc.Addrs,
			Replicas:       rc.Replicas,
			Feed:           ownFeed,
			GatedTables:    []string{catalog.TableData, catalog.TableLocators},
			SchedulerTable: scheduler.TableEntries,
			ContentTable:   catalog.TableLocators,
			AdoptScheduler: func(rows map[string][]byte) error { return c.DS.AdoptRows(rows) },
			GetContent:     backend.Get,
			PutContent:     backend.Put,
			HasContent: func(uid string) bool {
				_, err := backend.Size(uid)
				return err == nil
			},
			DialOpts:      rc.DialOpts,
			ProbeTimeout:  rc.ProbeTimeout,
			SkipBootCheck: rc.SkipBootCheck,
			Logf:          rc.Logf,
		})
		if err != nil {
			return fail(err)
		}
		// Every service write now flows feed-first (shipping to replicas)
		// behind the ownership gate (refusing ranges this shard lost).
		cfg.Store = node.Guard(ownFeed)
	} else if cfg.Rebalance != nil {
		rb := cfg.Rebalance
		var err error
		ownFeed, err = db.NewFeedStore(cfg.Store, uint64(time.Now().UnixNano()))
		if err != nil {
			return fail(err)
		}
		backend := cfg.Backend
		rnode, err = rebalance.NewNode(rebalance.Config{
			Self:           rb.Shard,
			Shards:         rb.Shards,
			Feed:           ownFeed,
			Tables:         []string{catalog.TableData, catalog.TableLocators},
			SchedulerTable: scheduler.TableEntries,
			ContentTable:   catalog.TableLocators,
			Endpoints:      func() map[string]string { return c.DR.Endpoints() },
			GetContent:     backend.Get,
			PutContent:     backend.Put,
			HasContent: func(uid string) bool {
				_, err := backend.Size(uid)
				return err == nil
			},
			AdoptScheduler: func(rows map[string][]byte) error { return c.DS.AdoptRows(rows) },
			DropScheduler:  func(uid string) error { return c.DS.Unschedule(data.UID(uid)) },
			OnCommit:       rb.OnCommit,
			DialOpts:       rb.DialOpts,
			Logf:           rb.Logf,
		})
		if err != nil {
			return fail(err)
		}
		// Every service write flows through the feed (migrations snapshot
		// and follow it) behind the ownership guard (refusing keys that
		// departed in a cutover or never homed here).
		cfg.Store = rnode.Guard(ownFeed)
	}
	ds, err := scheduler.NewDurable(cfg.Store)
	if err != nil {
		return fail(err)
	}
	if node != nil {
		ds.SetRangeGate(func(uid data.UID) error { return node.GateUID(string(uid)) })
	}
	if rnode != nil {
		ds.SetRangeGate(func(uid data.UID) error { return rnode.GateKey(string(uid)) })
	}
	dr, err := repository.NewDurableService(cfg.Backend, cfg.Store)
	if err != nil {
		return fail(err)
	}
	c = &Container{
		Mux:      rpc.NewMux(),
		DC:       catalog.NewService(cfg.Store),
		DR:       dr,
		DT:       transfer.NewService(),
		DS:       ds,
		ownStore: ownStore,
		node:     node,
		rnode:    rnode,
		ownFeed:  ownFeed,
		seeders:  make(map[data.UID]*swarm.Peer),
	}
	if !cfg.DisableFTP {
		var opts []ftp.Option
		if cfg.FTPThrottle > 0 {
			opts = append(opts, ftp.WithThrottle(cfg.FTPThrottle))
		}
		if c.FTP, err = ftp.NewServer(cfg.Backend, "127.0.0.1:0", opts...); err != nil {
			c.Close()
			return nil, fmt.Errorf("runtime: %w", err)
		}
		c.DR.RegisterEndpoint("ftp", c.FTP.Addr())
	}
	if !cfg.DisableHTTP {
		if c.HTTP, err = httpx.NewServer(cfg.Backend, "127.0.0.1:0"); err != nil {
			c.Close()
			return nil, fmt.Errorf("runtime: %w", err)
		}
		c.DR.RegisterEndpoint("http", c.HTTP.Addr())
	}
	if !cfg.DisableSwarm {
		if c.Tracker, err = swarm.NewTracker("127.0.0.1:0"); err != nil {
			c.Close()
			return nil, fmt.Errorf("runtime: %w", err)
		}
		c.DR.RegisterEndpoint("bittorrent", c.Tracker.Addr())
		// Lazily start a seeder the first time a bittorrent locator for a
		// datum is requested, so every swarm has a permanent first source.
		backend := cfg.Backend
		c.DR.SetLocatorHook(func(uid data.UID, protocol string) error {
			if protocol != "bittorrent" {
				return nil
			}
			return c.ensureSeeder(backend, uid)
		})
	}

	c.DC.Mount(c.Mux)
	c.DR.Mount(c.Mux)
	c.DT.Mount(c.Mux)
	c.DS.Mount(c.Mux)
	if c.node != nil {
		c.node.Mount(c.Mux)
		// Ownership is resolved before the rpc server answers: no peer or
		// client can observe this shard alive while it is still deciding
		// whether it (or a promoted successor) owns its ranges — the
		// ordering half of the split-brain argument.
		c.node.Start()
	}
	if c.rnode != nil {
		c.rnode.Mount(c.Mux)
	}

	if cfg.Listener != nil {
		c.rpcServer = rpc.NewServer(cfg.Listener, c.Mux, cfg.RPCOptions...)
	} else if cfg.Addr != "" {
		if c.rpcServer, err = rpc.Listen(cfg.Addr, c.Mux, cfg.RPCOptions...); err != nil {
			c.Close()
			return nil, fmt.Errorf("runtime: %w", err)
		}
	}
	return c, nil
}

// Repl returns the container's replication node (nil when the container is
// not part of a replicated plane).
func (c *Container) Repl() *repl.Node { return c.node }

// Rebalance returns the container's elastic-membership node (nil when the
// container is not part of an elastic plane).
func (c *Container) Rebalance() *rebalance.Node { return c.rnode }

// Checkpoint forces a compaction of the container's durable store (a full
// snapshot plus WAL rotation), bounding the replay a subsequent restart
// pays. It is a no-op for containers without a StateDir-opened store.
func (c *Container) Checkpoint() error {
	if c.ownStore == nil {
		return nil
	}
	return c.ownStore.Compact()
}

// Addr returns the rpc listen address ("" when serving in-process only).
func (c *Container) Addr() string {
	if c.rpcServer == nil {
		return ""
	}
	return c.rpcServer.Addr()
}

// ensureSeeder starts (once) a swarm seeder for the datum's content.
func (c *Container) ensureSeeder(backend repository.Backend, uid data.UID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("runtime: container closed")
	}
	if _, ok := c.seeders[uid]; ok {
		return nil
	}
	content, err := backend.Get(string(uid))
	if err != nil {
		return fmt.Errorf("runtime: cannot seed %s: %w", uid, err)
	}
	meta := swarm.NewMetainfo(string(uid), content, swarm.DefaultPieceSize)
	seeder, err := swarm.NewSeeder(backend, meta, c.Tracker.Addr(), "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("runtime: seeding %s: %w", uid, err)
	}
	c.seeders[uid] = seeder
	return nil
}

// Close stops every server the container started.
func (c *Container) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	seeders := c.seeders
	c.seeders = map[data.UID]*swarm.Peer{}
	c.mu.Unlock()

	for _, s := range seeders {
		s.Close()
	}
	if c.rpcServer != nil {
		c.rpcServer.Close()
	}
	if c.node != nil {
		c.node.Stop()
	}
	if c.rnode != nil {
		c.rnode.Stop()
	}
	if c.FTP != nil {
		c.FTP.Close()
	}
	if c.HTTP != nil {
		c.HTTP.Close()
	}
	if c.Tracker != nil {
		c.Tracker.Close()
	}
	if c.ownFeed != nil {
		c.ownFeed.Close()
	}
	if c.ownStore != nil {
		c.ownStore.Close()
	}
	return nil
}
