// Package runtime assembles BitDew's stable-node side: the service
// container running the four D* services (Data Catalog, Data Repository,
// Data Transfer, Data Scheduler) together with the protocol back-ends (an
// FTP-like server, an HTTP server and a swarm tracker) over shared
// persistent storage. The paper's fault model for these hosts is the
// transient fault — an administrator restarts them — which the container
// supports through the db package's WAL/snapshot replay.
package runtime

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"bitdew/internal/catalog"
	"bitdew/internal/data"
	"bitdew/internal/db"
	"bitdew/internal/protocols/ftp"
	"bitdew/internal/protocols/httpx"
	"bitdew/internal/protocols/swarm"
	"bitdew/internal/repository"
	"bitdew/internal/rpc"
	"bitdew/internal/scheduler"
	"bitdew/internal/transfer"
)

// ContainerConfig configures a service container.
type ContainerConfig struct {
	// Addr is the rpc listen address; empty serves in-process only (access
	// the container through Mux with core.ConnectLocal).
	Addr string
	// StateDir makes the whole service plane durable and restartable: the
	// meta-data of every D* service (catalog data + locators, scheduler
	// placements, repository endpoints) is checkpointed under
	// StateDir/meta (snapshot + write-ahead log, compacted periodically)
	// and repository content lives under StateDir/data, so a container
	// rebuilt over the same directory recovers all of it. Ignored for the
	// store when Store is set, and for the content when Backend is set.
	StateDir string
	// CompactEvery overrides the StateDir store's WAL compaction threshold
	// (records between automatic snapshot+rotation; 0 keeps the default).
	CompactEvery int
	// Store is the meta-data database (defaults to an embedded RowStore;
	// all four services persist through it).
	Store db.Store
	// Backend is the repository storage (defaults to in-memory).
	Backend repository.Backend
	// DisableFTP / DisableHTTP / DisableSwarm turn protocol servers off.
	DisableFTP   bool
	DisableHTTP  bool
	DisableSwarm bool
	// FTPThrottle caps the ftp server's per-connection rate in bytes/s
	// (0 = unthrottled); benchmarks use it to emulate constrained uplinks.
	FTPThrottle int64
	// RPCOptions configure the rpc server (latency injection, serve
	// limits); benchmarks use them to model a service host of finite
	// capacity from one machine.
	RPCOptions []rpc.ServerOption
}

// Container is one stable service host.
type Container struct {
	Mux *rpc.Mux

	DC *catalog.Service
	DR *repository.Service
	DT *transfer.Service
	DS *scheduler.Service

	FTP     *ftp.Server
	HTTP    *httpx.Server
	Tracker *swarm.Tracker

	rpcServer *rpc.Server
	// ownStore is the durable store this container opened from StateDir
	// (nil when the caller supplied Store); Close flushes and closes it.
	ownStore *db.DurableStore

	mu      sync.Mutex
	seeders map[data.UID]*swarm.Peer
	closed  bool
}

// NewContainer builds and starts a service container.
func NewContainer(cfg ContainerConfig) (*Container, error) {
	var ownStore *db.DurableStore
	if cfg.Store == nil {
		if cfg.StateDir != "" {
			var err error
			ownStore, err = db.OpenDurable(filepath.Join(cfg.StateDir, "meta"),
				db.WithCompactEvery(cfg.CompactEvery),
				db.WithCompactInterval(time.Minute))
			if err != nil {
				return nil, fmt.Errorf("runtime: %w", err)
			}
			cfg.Store = ownStore
		} else {
			cfg.Store = db.NewRowStore()
		}
	}
	if cfg.Backend == nil {
		if cfg.StateDir != "" {
			backend, err := repository.NewDirBackend(filepath.Join(cfg.StateDir, "data"))
			if err != nil {
				if ownStore != nil {
					ownStore.Close()
				}
				return nil, fmt.Errorf("runtime: %w", err)
			}
			cfg.Backend = backend
		} else {
			cfg.Backend = repository.NewMemBackend()
		}
	}
	ds, err := scheduler.NewDurable(cfg.Store)
	if err != nil {
		if ownStore != nil {
			ownStore.Close()
		}
		return nil, fmt.Errorf("runtime: %w", err)
	}
	dr, err := repository.NewDurableService(cfg.Backend, cfg.Store)
	if err != nil {
		if ownStore != nil {
			ownStore.Close()
		}
		return nil, fmt.Errorf("runtime: %w", err)
	}
	c := &Container{
		Mux:      rpc.NewMux(),
		DC:       catalog.NewService(cfg.Store),
		DR:       dr,
		DT:       transfer.NewService(),
		DS:       ds,
		ownStore: ownStore,
		seeders:  make(map[data.UID]*swarm.Peer),
	}
	if !cfg.DisableFTP {
		var opts []ftp.Option
		if cfg.FTPThrottle > 0 {
			opts = append(opts, ftp.WithThrottle(cfg.FTPThrottle))
		}
		if c.FTP, err = ftp.NewServer(cfg.Backend, "127.0.0.1:0", opts...); err != nil {
			c.Close()
			return nil, fmt.Errorf("runtime: %w", err)
		}
		c.DR.RegisterEndpoint("ftp", c.FTP.Addr())
	}
	if !cfg.DisableHTTP {
		if c.HTTP, err = httpx.NewServer(cfg.Backend, "127.0.0.1:0"); err != nil {
			c.Close()
			return nil, fmt.Errorf("runtime: %w", err)
		}
		c.DR.RegisterEndpoint("http", c.HTTP.Addr())
	}
	if !cfg.DisableSwarm {
		if c.Tracker, err = swarm.NewTracker("127.0.0.1:0"); err != nil {
			c.Close()
			return nil, fmt.Errorf("runtime: %w", err)
		}
		c.DR.RegisterEndpoint("bittorrent", c.Tracker.Addr())
		// Lazily start a seeder the first time a bittorrent locator for a
		// datum is requested, so every swarm has a permanent first source.
		backend := cfg.Backend
		c.DR.SetLocatorHook(func(uid data.UID, protocol string) error {
			if protocol != "bittorrent" {
				return nil
			}
			return c.ensureSeeder(backend, uid)
		})
	}

	c.DC.Mount(c.Mux)
	c.DR.Mount(c.Mux)
	c.DT.Mount(c.Mux)
	c.DS.Mount(c.Mux)

	if cfg.Addr != "" {
		if c.rpcServer, err = rpc.Listen(cfg.Addr, c.Mux, cfg.RPCOptions...); err != nil {
			c.Close()
			return nil, fmt.Errorf("runtime: %w", err)
		}
	}
	return c, nil
}

// Checkpoint forces a compaction of the container's durable store (a full
// snapshot plus WAL rotation), bounding the replay a subsequent restart
// pays. It is a no-op for containers without a StateDir-opened store.
func (c *Container) Checkpoint() error {
	if c.ownStore == nil {
		return nil
	}
	return c.ownStore.Compact()
}

// Addr returns the rpc listen address ("" when serving in-process only).
func (c *Container) Addr() string {
	if c.rpcServer == nil {
		return ""
	}
	return c.rpcServer.Addr()
}

// ensureSeeder starts (once) a swarm seeder for the datum's content.
func (c *Container) ensureSeeder(backend repository.Backend, uid data.UID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("runtime: container closed")
	}
	if _, ok := c.seeders[uid]; ok {
		return nil
	}
	content, err := backend.Get(string(uid))
	if err != nil {
		return fmt.Errorf("runtime: cannot seed %s: %w", uid, err)
	}
	meta := swarm.NewMetainfo(string(uid), content, swarm.DefaultPieceSize)
	seeder, err := swarm.NewSeeder(backend, meta, c.Tracker.Addr(), "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("runtime: seeding %s: %w", uid, err)
	}
	c.seeders[uid] = seeder
	return nil
}

// Close stops every server the container started.
func (c *Container) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	seeders := c.seeders
	c.seeders = map[data.UID]*swarm.Peer{}
	c.mu.Unlock()

	for _, s := range seeders {
		s.Close()
	}
	if c.rpcServer != nil {
		c.rpcServer.Close()
	}
	if c.FTP != nil {
		c.FTP.Close()
	}
	if c.HTTP != nil {
		c.HTTP.Close()
	}
	if c.Tracker != nil {
		c.Tracker.Close()
	}
	if c.ownStore != nil {
		c.ownStore.Close()
	}
	return nil
}
