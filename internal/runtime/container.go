// Package runtime assembles BitDew's stable-node side: the service
// container running the four D* services (Data Catalog, Data Repository,
// Data Transfer, Data Scheduler) together with the protocol back-ends (an
// FTP-like server, an HTTP server and a swarm tracker) over shared
// persistent storage. The paper's fault model for these hosts is the
// transient fault — an administrator restarts them — which the container
// supports through the db package's WAL/snapshot replay.
package runtime

import (
	"fmt"
	"sync"

	"bitdew/internal/catalog"
	"bitdew/internal/data"
	"bitdew/internal/db"
	"bitdew/internal/protocols/ftp"
	"bitdew/internal/protocols/httpx"
	"bitdew/internal/protocols/swarm"
	"bitdew/internal/repository"
	"bitdew/internal/rpc"
	"bitdew/internal/scheduler"
	"bitdew/internal/transfer"
)

// ContainerConfig configures a service container.
type ContainerConfig struct {
	// Addr is the rpc listen address; empty serves in-process only (access
	// the container through Mux with core.ConnectLocal).
	Addr string
	// Store is the meta-data database (defaults to an embedded RowStore).
	Store db.Store
	// Backend is the repository storage (defaults to in-memory).
	Backend repository.Backend
	// DisableFTP / DisableHTTP / DisableSwarm turn protocol servers off.
	DisableFTP   bool
	DisableHTTP  bool
	DisableSwarm bool
	// FTPThrottle caps the ftp server's per-connection rate in bytes/s
	// (0 = unthrottled); benchmarks use it to emulate constrained uplinks.
	FTPThrottle int64
}

// Container is one stable service host.
type Container struct {
	Mux *rpc.Mux

	DC *catalog.Service
	DR *repository.Service
	DT *transfer.Service
	DS *scheduler.Service

	FTP     *ftp.Server
	HTTP    *httpx.Server
	Tracker *swarm.Tracker

	rpcServer *rpc.Server

	mu      sync.Mutex
	seeders map[data.UID]*swarm.Peer
	closed  bool
}

// NewContainer builds and starts a service container.
func NewContainer(cfg ContainerConfig) (*Container, error) {
	if cfg.Store == nil {
		cfg.Store = db.NewRowStore()
	}
	if cfg.Backend == nil {
		cfg.Backend = repository.NewMemBackend()
	}
	c := &Container{
		Mux:     rpc.NewMux(),
		DC:      catalog.NewService(cfg.Store),
		DR:      repository.NewService(cfg.Backend),
		DT:      transfer.NewService(),
		DS:      scheduler.New(),
		seeders: make(map[data.UID]*swarm.Peer),
	}
	var err error
	if !cfg.DisableFTP {
		var opts []ftp.Option
		if cfg.FTPThrottle > 0 {
			opts = append(opts, ftp.WithThrottle(cfg.FTPThrottle))
		}
		if c.FTP, err = ftp.NewServer(cfg.Backend, "127.0.0.1:0", opts...); err != nil {
			return nil, fmt.Errorf("runtime: %w", err)
		}
		c.DR.RegisterEndpoint("ftp", c.FTP.Addr())
	}
	if !cfg.DisableHTTP {
		if c.HTTP, err = httpx.NewServer(cfg.Backend, "127.0.0.1:0"); err != nil {
			c.Close()
			return nil, fmt.Errorf("runtime: %w", err)
		}
		c.DR.RegisterEndpoint("http", c.HTTP.Addr())
	}
	if !cfg.DisableSwarm {
		if c.Tracker, err = swarm.NewTracker("127.0.0.1:0"); err != nil {
			c.Close()
			return nil, fmt.Errorf("runtime: %w", err)
		}
		c.DR.RegisterEndpoint("bittorrent", c.Tracker.Addr())
		// Lazily start a seeder the first time a bittorrent locator for a
		// datum is requested, so every swarm has a permanent first source.
		backend := cfg.Backend
		c.DR.SetLocatorHook(func(uid data.UID, protocol string) error {
			if protocol != "bittorrent" {
				return nil
			}
			return c.ensureSeeder(backend, uid)
		})
	}

	c.DC.Mount(c.Mux)
	c.DR.Mount(c.Mux)
	c.DT.Mount(c.Mux)
	c.DS.Mount(c.Mux)

	if cfg.Addr != "" {
		if c.rpcServer, err = rpc.Listen(cfg.Addr, c.Mux); err != nil {
			c.Close()
			return nil, fmt.Errorf("runtime: %w", err)
		}
	}
	return c, nil
}

// Addr returns the rpc listen address ("" when serving in-process only).
func (c *Container) Addr() string {
	if c.rpcServer == nil {
		return ""
	}
	return c.rpcServer.Addr()
}

// ensureSeeder starts (once) a swarm seeder for the datum's content.
func (c *Container) ensureSeeder(backend repository.Backend, uid data.UID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("runtime: container closed")
	}
	if _, ok := c.seeders[uid]; ok {
		return nil
	}
	content, err := backend.Get(string(uid))
	if err != nil {
		return fmt.Errorf("runtime: cannot seed %s: %w", uid, err)
	}
	meta := swarm.NewMetainfo(string(uid), content, swarm.DefaultPieceSize)
	seeder, err := swarm.NewSeeder(backend, meta, c.Tracker.Addr(), "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("runtime: seeding %s: %w", uid, err)
	}
	c.seeders[uid] = seeder
	return nil
}

// Close stops every server the container started.
func (c *Container) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	seeders := c.seeders
	c.seeders = map[data.UID]*swarm.Peer{}
	c.mu.Unlock()

	for _, s := range seeders {
		s.Close()
	}
	if c.rpcServer != nil {
		c.rpcServer.Close()
	}
	if c.FTP != nil {
		c.FTP.Close()
	}
	if c.HTTP != nil {
		c.HTTP.Close()
	}
	if c.Tracker != nil {
		c.Tracker.Close()
	}
	return nil
}
