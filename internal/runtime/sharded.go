package runtime

import (
	"fmt"
	"path/filepath"
	"sync"

	"bitdew/internal/rpc"
)

// MembershipService is the rpc service name of the shard-membership table.
const MembershipService = "ring"

// Membership is the shared membership table of a sharded service plane:
// the ordered list of shard rpc addresses (the order IS the placement
// contract — clients hash data UIDs onto this list with dht.NewPlacement)
// plus the answering shard's own index. Every shard serves the same table
// under the "ring" service, so any one shard bootstraps a client's view of
// the whole plane.
type Membership struct {
	// Self is the index of the shard answering the query.
	Self int
	// Addrs lists every shard's rpc address, in placement order.
	Addrs []string
}

// MountMembership serves the membership table on a shard's Mux.
func MountMembership(m *rpc.Mux, self int, addrs []string) {
	table := Membership{Self: self, Addrs: append([]string(nil), addrs...)}
	rpc.Register(m, MembershipService, "Members", func(struct{}) (Membership, error) {
		return table, nil
	})
}

// Members fetches the membership table from any one shard.
func Members(c rpc.Client) (Membership, error) {
	var table Membership
	err := c.Call(MembershipService, "Members", struct{}{}, &table)
	return table, err
}

// ShardedConfig configures a sharded service plane hosted in one process.
type ShardedConfig struct {
	// Shards is the number of independent service containers (>= 1).
	Shards int
	// Addrs optionally fixes each shard's listen address (len == Shards);
	// empty picks fresh loopback ports. cmd/bitdew-service uses it so a
	// single-process plane announces predictable ports.
	Addrs []string
	// StateDir, when set, gives shard i its own durable state under
	// <StateDir>/shard-<i> — each shard checkpoints and recovers
	// independently, exactly like N single containers would.
	StateDir string
	// CompactEvery overrides each shard store's WAL compaction threshold.
	CompactEvery int
	// DisableFTP / DisableHTTP / DisableSwarm apply to every shard.
	DisableFTP   bool
	DisableHTTP  bool
	DisableSwarm bool
	// FTPThrottle caps every shard's ftp server per-connection rate in
	// bytes/s (0 = unthrottled).
	FTPThrottle int64
	// RPCOptions configure every shard's rpc server (latency, serve
	// limits) — the per-host capacity model of the scaling experiments.
	RPCOptions []rpc.ServerOption
}

// ShardedContainer is a sharded D* service plane: N independent service
// containers — each a complete Data Catalog, Data Repository, Data Transfer
// and Data Scheduler over its own store — bound together only by the
// shared membership table. There is no cross-shard traffic at all: clients
// place each datum on its home shard by consistent hash of the UID
// (dht.Placement over the membership order), so the containers scale out
// without coordinating. Shards can be killed and restarted independently;
// a restarted shard recovers from its own StateDir and re-listens on its
// original address, and the survivors never notice.
type ShardedContainer struct {
	cfg ShardedConfig

	mu     sync.Mutex
	shards []*Container // nil at indexes whose shard is killed
	addrs  []string     // fixed at first boot; restarts re-bind the same address
}

// NewShardedContainer boots every shard, each on its own loopback address.
func NewShardedContainer(cfg ShardedConfig) (*ShardedContainer, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("runtime: sharded container needs >= 1 shard, got %d", cfg.Shards)
	}
	if len(cfg.Addrs) != 0 && len(cfg.Addrs) != cfg.Shards {
		return nil, fmt.Errorf("runtime: %d shards but %d addresses", cfg.Shards, len(cfg.Addrs))
	}
	s := &ShardedContainer{
		cfg:    cfg,
		shards: make([]*Container, cfg.Shards),
		addrs:  make([]string, cfg.Shards),
	}
	for i := 0; i < cfg.Shards; i++ {
		addr := "127.0.0.1:0"
		if len(cfg.Addrs) != 0 {
			addr = cfg.Addrs[i]
		}
		c, err := NewContainer(s.containerConfig(i, addr))
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("runtime: shard %d: %w", i, err)
		}
		s.shards[i] = c
		s.addrs[i] = c.Addr()
	}
	// The membership table needs every address, so it mounts after all
	// shards are listening; mounting is idempotent per Mux.
	for i, c := range s.shards {
		MountMembership(c.Mux, i, s.addrs)
	}
	return s, nil
}

// containerConfig derives shard i's container configuration.
func (s *ShardedContainer) containerConfig(i int, addr string) ContainerConfig {
	cfg := ContainerConfig{
		Addr:         addr,
		CompactEvery: s.cfg.CompactEvery,
		DisableFTP:   s.cfg.DisableFTP,
		DisableHTTP:  s.cfg.DisableHTTP,
		DisableSwarm: s.cfg.DisableSwarm,
		FTPThrottle:  s.cfg.FTPThrottle,
		RPCOptions:   s.cfg.RPCOptions,
	}
	if s.cfg.StateDir != "" {
		cfg.StateDir = filepath.Join(s.cfg.StateDir, fmt.Sprintf("shard-%d", i))
	}
	return cfg
}

// N returns the shard count.
func (s *ShardedContainer) N() int { return len(s.addrs) }

// Addrs returns every shard's rpc address in placement order (the
// membership table clients must connect with).
func (s *ShardedContainer) Addrs() []string {
	return append([]string(nil), s.addrs...)
}

// Shard returns shard i's container (nil while that shard is killed).
func (s *ShardedContainer) Shard(i int) *Container {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards[i]
}

// KillShard stops shard i, releasing its sockets and store; its state
// directory (when durable) stays behind for RestartShard. The other shards
// keep serving — a client loses exactly the data homed on i.
func (s *ShardedContainer) KillShard(i int) error {
	s.mu.Lock()
	c := s.shards[i]
	s.shards[i] = nil
	s.mu.Unlock()
	if c == nil {
		return fmt.Errorf("runtime: shard %d already down", i)
	}
	return c.Close()
}

// RestartShard boots shard i again on its original address, recovering
// whatever its StateDir holds. It is the administrator-restart of the
// paper's transient fault model, per shard.
func (s *ShardedContainer) RestartShard(i int) error {
	s.mu.Lock()
	running := s.shards[i] != nil
	s.mu.Unlock()
	if running {
		return fmt.Errorf("runtime: shard %d still running", i)
	}
	c, err := NewContainer(s.containerConfig(i, s.addrs[i]))
	if err != nil {
		return fmt.Errorf("runtime: restart shard %d: %w", i, err)
	}
	MountMembership(c.Mux, i, s.addrs)
	s.mu.Lock()
	s.shards[i] = c
	s.mu.Unlock()
	return nil
}

// Close stops every live shard, returning the first error.
func (s *ShardedContainer) Close() error {
	s.mu.Lock()
	shards := append([]*Container(nil), s.shards...)
	for i := range s.shards {
		s.shards[i] = nil
	}
	s.mu.Unlock()
	var first error
	for _, c := range shards {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
