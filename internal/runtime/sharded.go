package runtime

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"time"

	"bitdew/internal/rpc"
)

// MembershipService is the rpc service name of the shard-membership table.
const MembershipService = "ring"

// Membership is the shared membership table of a sharded service plane:
// the ordered list of shard rpc addresses (the order IS the placement
// contract — clients hash data UIDs onto this list with dht.NewPlacement)
// plus the answering shard's own index. Every shard serves the same table
// under the "ring" service, so any one shard bootstraps a client's view of
// the whole plane.
type Membership struct {
	// Self is the index of the shard answering the query.
	Self int
	// Addrs lists every shard's rpc address, in placement order.
	Addrs []string
	// Replicas is the plane's replication factor R (0 or 1 when the plane
	// is unreplicated); clients use it to build failover-aware routing.
	Replicas int
}

// MountMembership serves the membership table on a shard's Mux.
func MountMembership(m *rpc.Mux, self int, addrs []string, replicas int) {
	table := Membership{Self: self, Addrs: append([]string(nil), addrs...), Replicas: replicas}
	rpc.Register(m, MembershipService, "Members", func(struct{}) (Membership, error) {
		return table, nil
	})
}

// Members fetches the membership table from any one shard.
func Members(c rpc.Client) (Membership, error) {
	var table Membership
	err := c.Call(MembershipService, "Members", struct{}{}, &table)
	return table, err
}

// DiscoverReplicas asks the plane for its replication factor R, trying each
// shard in turn until one answers. It returns 0 — "assume unreplicated" —
// when no shard is reachable or the plane predates replication; callers
// pass the result to core.ConnectSharded via core.WithReplicas, so a
// degraded discovery merely loses failover routing, never connectivity.
func DiscoverReplicas(addrs []string) int {
	for _, addr := range addrs {
		c, err := rpc.Dial(addr, rpc.WithCallTimeout(2*time.Second))
		if err != nil {
			continue
		}
		table, err := Members(c)
		c.Close()
		if err == nil {
			return table.Replicas
		}
	}
	return 0
}

// ShardedConfig configures a sharded service plane hosted in one process.
type ShardedConfig struct {
	// Shards is the number of independent service containers (>= 1).
	Shards int
	// Addrs optionally fixes each shard's listen address (len == Shards);
	// empty picks fresh loopback ports. cmd/bitdew-service uses it so a
	// single-process plane announces predictable ports.
	Addrs []string
	// StateDir, when set, gives shard i its own durable state under
	// <StateDir>/shard-<i> — each shard checkpoints and recovers
	// independently, exactly like N single containers would.
	StateDir string
	// CompactEvery overrides each shard store's WAL compaction threshold.
	CompactEvery int
	// DisableFTP / DisableHTTP / DisableSwarm apply to every shard.
	DisableFTP   bool
	DisableHTTP  bool
	DisableSwarm bool
	// FTPThrottle caps every shard's ftp server per-connection rate in
	// bytes/s (0 = unthrottled).
	FTPThrottle int64
	// RPCOptions configure every shard's rpc server (latency, serve
	// limits) — the per-host capacity model of the scaling experiments.
	RPCOptions []rpc.ServerOption
	// Replicas enables shard replication: each key range lives on its home
	// shard plus Replicas-1 successor shards (internal/repl), so killing
	// one shard costs no availability — a successor is promoted in its
	// place. 0 or 1 leaves the plane unreplicated. Capped at Shards.
	Replicas int
	// ReplProbeTimeout bounds each failover liveness probe (0 = default).
	ReplProbeTimeout time.Duration
	// ReplDialOpts, when set, contributes extra dial options for shard
	// `from`'s outbound replication connections to addr — the
	// fault-injection hook of the failover crash-point tests.
	ReplDialOpts func(from int, addr string) []rpc.DialOption
	// ReplLogf receives replication life-cycle events from every shard.
	ReplLogf func(format string, args ...any)
}

// ShardedContainer is a sharded D* service plane: N independent service
// containers — each a complete Data Catalog, Data Repository, Data Transfer
// and Data Scheduler over its own store — bound together only by the
// shared membership table. There is no cross-shard traffic at all: clients
// place each datum on its home shard by consistent hash of the UID
// (dht.Placement over the membership order), so the containers scale out
// without coordinating. Shards can be killed and restarted independently;
// a restarted shard recovers from its own StateDir and re-listens on its
// original address, and the survivors never notice.
type ShardedContainer struct {
	cfg ShardedConfig

	mu     sync.Mutex
	shards []*Container // nil at indexes whose shard is killed
	addrs  []string     // fixed at first boot; restarts re-bind the same address
}

// NewShardedContainer boots every shard, each on its own loopback address.
func NewShardedContainer(cfg ShardedConfig) (*ShardedContainer, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("runtime: sharded container needs >= 1 shard, got %d", cfg.Shards)
	}
	if len(cfg.Addrs) != 0 && len(cfg.Addrs) != cfg.Shards {
		return nil, fmt.Errorf("runtime: %d shards but %d addresses", cfg.Shards, len(cfg.Addrs))
	}
	if cfg.Replicas > cfg.Shards {
		cfg.Replicas = cfg.Shards
	}
	s := &ShardedContainer{
		cfg:    cfg,
		shards: make([]*Container, cfg.Shards),
		addrs:  make([]string, cfg.Shards),
	}
	if cfg.Replicas > 1 {
		// A replicated plane pre-listens every shard: replication needs the
		// full membership table up front (shippers, failover probes), but
		// the containers boot sequentially. Connections made to a not-yet-
		// booted shard simply wait in its accept backlog.
		liss := make([]net.Listener, cfg.Shards)
		for i := range liss {
			addr := "127.0.0.1:0"
			if len(cfg.Addrs) != 0 {
				addr = cfg.Addrs[i]
			}
			lis, err := net.Listen("tcp", addr)
			if err != nil {
				for _, l := range liss[:i] {
					l.Close()
				}
				return nil, fmt.Errorf("runtime: shard %d: listen %s: %w", i, addr, err)
			}
			liss[i] = lis
			s.addrs[i] = lis.Addr().String()
		}
		for i := range liss {
			ccfg := s.containerConfig(i, "")
			ccfg.Listener = liss[i]
			// SkipBootCheck: the whole plane is booting together here, so
			// no shard can have promoted anything while another was down.
			ccfg.Replication = s.replicationConfig(i, true)
			c, err := NewContainer(ccfg)
			if err != nil {
				for _, l := range liss[i:] {
					l.Close()
				}
				s.Close()
				return nil, fmt.Errorf("runtime: shard %d: %w", i, err)
			}
			s.shards[i] = c
		}
	} else {
		for i := 0; i < cfg.Shards; i++ {
			addr := "127.0.0.1:0"
			if len(cfg.Addrs) != 0 {
				addr = cfg.Addrs[i]
			}
			c, err := NewContainer(s.containerConfig(i, addr))
			if err != nil {
				s.Close()
				return nil, fmt.Errorf("runtime: shard %d: %w", i, err)
			}
			s.shards[i] = c
			s.addrs[i] = c.Addr()
		}
	}
	// The membership table needs every address, so it mounts after all
	// shards are listening; mounting is idempotent per Mux.
	for i, c := range s.shards {
		MountMembership(c.Mux, i, s.addrs, cfg.Replicas)
	}
	return s, nil
}

// replicationConfig derives shard i's replication wiring (nil when the
// plane is unreplicated).
func (s *ShardedContainer) replicationConfig(i int, skipBootCheck bool) *ReplicationConfig {
	if s.cfg.Replicas < 2 {
		return nil
	}
	rc := &ReplicationConfig{
		Shard:         i,
		Addrs:         s.addrs,
		Replicas:      s.cfg.Replicas,
		ProbeTimeout:  s.cfg.ReplProbeTimeout,
		SkipBootCheck: skipBootCheck,
		Logf:          s.cfg.ReplLogf,
	}
	if s.cfg.ReplDialOpts != nil {
		from, hook := i, s.cfg.ReplDialOpts
		rc.DialOpts = func(addr string) []rpc.DialOption { return hook(from, addr) }
	}
	return rc
}

// containerConfig derives shard i's container configuration.
func (s *ShardedContainer) containerConfig(i int, addr string) ContainerConfig {
	cfg := ContainerConfig{
		Addr:         addr,
		CompactEvery: s.cfg.CompactEvery,
		DisableFTP:   s.cfg.DisableFTP,
		DisableHTTP:  s.cfg.DisableHTTP,
		DisableSwarm: s.cfg.DisableSwarm,
		FTPThrottle:  s.cfg.FTPThrottle,
		RPCOptions:   s.cfg.RPCOptions,
	}
	if s.cfg.StateDir != "" {
		cfg.StateDir = filepath.Join(s.cfg.StateDir, fmt.Sprintf("shard-%d", i))
	}
	return cfg
}

// N returns the shard count.
func (s *ShardedContainer) N() int { return len(s.addrs) }

// Addrs returns every shard's rpc address in placement order (the
// membership table clients must connect with).
func (s *ShardedContainer) Addrs() []string {
	return append([]string(nil), s.addrs...)
}

// Shard returns shard i's container (nil while that shard is killed).
func (s *ShardedContainer) Shard(i int) *Container {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards[i]
}

// KillShard stops shard i, releasing its sockets and store; its state
// directory (when durable) stays behind for RestartShard. The other shards
// keep serving — a client loses exactly the data homed on i.
func (s *ShardedContainer) KillShard(i int) error {
	s.mu.Lock()
	c := s.shards[i]
	s.shards[i] = nil
	s.mu.Unlock()
	if c == nil {
		return fmt.Errorf("runtime: shard %d already down", i)
	}
	return c.Close()
}

// RestartShard boots shard i again on its original address, recovering
// whatever its StateDir holds. It is the administrator-restart of the
// paper's transient fault model, per shard.
func (s *ShardedContainer) RestartShard(i int) error {
	s.mu.Lock()
	running := s.shards[i] != nil
	s.mu.Unlock()
	if running {
		return fmt.Errorf("runtime: shard %d still running", i)
	}
	ccfg := s.containerConfig(i, s.addrs[i])
	// A restarting shard must resolve ownership by probing: a successor may
	// have been promoted over its ranges while it was down, in which case
	// it rejoins as a replica instead of serving stale state.
	ccfg.Replication = s.replicationConfig(i, false)
	c, err := NewContainer(ccfg)
	if err != nil {
		return fmt.Errorf("runtime: restart shard %d: %w", i, err)
	}
	MountMembership(c.Mux, i, s.addrs, s.cfg.Replicas)
	s.mu.Lock()
	s.shards[i] = c
	s.mu.Unlock()
	return nil
}

// Replicas returns the plane's replication factor (0 or 1: unreplicated).
func (s *ShardedContainer) Replicas() int { return s.cfg.Replicas }

// WaitReplicated blocks until every live shard's outbound replication
// streams are fully acknowledged (snapshot synced, tail acked, content
// pulled), or the deadline passes. It is a healthy-plane barrier: while a
// shard is down, its peers' streams to it cannot converge and this returns
// an error at the deadline.
func (s *ShardedContainer) WaitReplicated(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for i := 0; i < s.N(); i++ {
		c := s.Shard(i)
		if c == nil || c.Repl() == nil {
			continue
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return fmt.Errorf("runtime: replication convergence timed out after %v", timeout)
		}
		if err := c.Repl().WaitReplicated(remaining); err != nil {
			return fmt.Errorf("runtime: shard %d: %w", i, err)
		}
	}
	return nil
}

// Close stops every live shard, returning the first error.
func (s *ShardedContainer) Close() error {
	s.mu.Lock()
	shards := append([]*Container(nil), s.shards...)
	for i := range s.shards {
		s.shards[i] = nil
	}
	s.mu.Unlock()
	var first error
	for _, c := range shards {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
