package runtime

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"time"

	"bitdew/internal/rpc"
)

// MembershipService is the rpc service name of the shard-membership table.
const MembershipService = "ring"

// Membership is the shared membership table of a sharded service plane:
// the ordered list of shard rpc addresses (the order IS the placement
// contract — clients hash data UIDs onto this list with dht.NewPlacement)
// plus the answering shard's own index. Every shard serves the same table
// under the "ring" service, so any one shard bootstraps a client's view of
// the whole plane.
type Membership struct {
	// Self is the index of the shard answering the query.
	Self int
	// Addrs lists every shard's rpc address, in placement order.
	Addrs []string
	// Replicas is the plane's replication factor R (0 or 1 when the plane
	// is unreplicated); clients use it to build failover-aware routing.
	Replicas int
	// Epoch numbers the membership: an elastic plane bumps it on every
	// committed AddShard/DrainShard, and clients that see a higher epoch
	// than their view rebuild their shard set around the new Addrs. 0
	// marks a static plane (fixed at boot, nothing to poll for).
	Epoch uint64
}

// MembershipTable serves a shard's (possibly changing) membership view
// under the "ring" service. Static planes never call Set; elastic planes
// Set on every committed rebalance, which is how clients learn the plane
// grew or shrank.
type MembershipTable struct {
	mu    sync.Mutex
	table Membership
}

// NewMembershipTable builds the table with an initial view.
func NewMembershipTable(self int, addrs []string, replicas int, epoch uint64) *MembershipTable {
	return &MembershipTable{table: Membership{
		Self:     self,
		Addrs:    append([]string(nil), addrs...),
		Replicas: replicas,
		Epoch:    epoch,
	}}
}

// Mount serves the table on a shard's Mux.
func (t *MembershipTable) Mount(m *rpc.Mux) {
	rpc.Register(m, MembershipService, "Members", func(struct{}) (Membership, error) {
		return t.Table(), nil
	})
}

// Set publishes a committed membership change.
func (t *MembershipTable) Set(epoch uint64, addrs []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if epoch < t.table.Epoch {
		return
	}
	t.table.Epoch = epoch
	t.table.Addrs = append([]string(nil), addrs...)
}

// Table returns the current view.
func (t *MembershipTable) Table() Membership {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.table
	out.Addrs = append([]string(nil), t.table.Addrs...)
	return out
}

// MountMembership serves a static membership table on a shard's Mux (epoch
// 0: nothing will ever change; clients skip epoch polling).
func MountMembership(m *rpc.Mux, self int, addrs []string, replicas int) {
	NewMembershipTable(self, addrs, replicas, 0).Mount(m)
}

// Members fetches the membership table from any one shard.
func Members(c rpc.Client) (Membership, error) {
	var table Membership
	err := c.Call(MembershipService, "Members", struct{}{}, &table)
	return table, err
}

// DiscoverReplicas asks the plane for its replication factor R, trying each
// shard in turn until one answers. It returns 0 — "assume unreplicated" —
// when no shard is reachable or the plane predates replication; callers
// pass the result to core.ConnectSharded via core.WithReplicas, so a
// degraded discovery merely loses failover routing, never connectivity.
func DiscoverReplicas(addrs []string) int {
	for _, addr := range addrs {
		c, err := rpc.Dial(addr, rpc.WithCallTimeout(2*time.Second))
		if err != nil {
			continue
		}
		table, err := Members(c)
		c.Close()
		if err == nil {
			return table.Replicas
		}
	}
	return 0
}

// ShardedConfig configures a sharded service plane hosted in one process.
type ShardedConfig struct {
	// Shards is the number of independent service containers (>= 1).
	Shards int
	// Addrs optionally fixes each shard's listen address (len == Shards);
	// empty picks fresh loopback ports. cmd/bitdew-service uses it so a
	// single-process plane announces predictable ports.
	Addrs []string
	// StateDir, when set, gives shard i its own durable state under
	// <StateDir>/shard-<i> — each shard checkpoints and recovers
	// independently, exactly like N single containers would.
	StateDir string
	// CompactEvery overrides each shard store's WAL compaction threshold.
	CompactEvery int
	// DisableFTP / DisableHTTP / DisableSwarm apply to every shard.
	DisableFTP   bool
	DisableHTTP  bool
	DisableSwarm bool
	// FTPThrottle caps every shard's ftp server per-connection rate in
	// bytes/s (0 = unthrottled).
	FTPThrottle int64
	// RPCOptions configure every shard's rpc server (latency, serve
	// limits) — the per-host capacity model of the scaling experiments.
	RPCOptions []rpc.ServerOption
	// Replicas enables shard replication: each key range lives on its home
	// shard plus Replicas-1 successor shards (internal/repl), so killing
	// one shard costs no availability — a successor is promoted in its
	// place. 0 or 1 leaves the plane unreplicated. Capped at Shards.
	Replicas int
	// ReplProbeTimeout bounds each failover liveness probe (0 = default).
	ReplProbeTimeout time.Duration
	// ReplDialOpts, when set, contributes extra dial options for shard
	// `from`'s outbound replication connections to addr — the
	// fault-injection hook of the failover crash-point tests.
	ReplDialOpts func(from int, addr string) []rpc.DialOption
	// ReplLogf receives replication life-cycle events from every shard.
	ReplLogf func(format string, args ...any)
}

// ShardedContainer is a sharded D* service plane: N independent service
// containers — each a complete Data Catalog, Data Repository, Data Transfer
// and Data Scheduler over its own store — bound together only by the
// shared membership table. There is no cross-shard traffic at all: clients
// place each datum on its home shard by consistent hash of the UID
// (dht.Placement over the membership order), so the containers scale out
// without coordinating. Shards can be killed and restarted independently;
// a restarted shard recovers from its own StateDir and re-listens on its
// original address, and the survivors never notice.
type ShardedContainer struct {
	cfg ShardedConfig

	mu     sync.Mutex
	shards []*Container // nil at indexes whose shard is killed
	addrs  []string     // placement order; AddShard/DrainShard grow and shrink it
	// tables[i] is shard i's live membership table; an elastic commit
	// Sets every one so clients polling any shard learn the new epoch.
	tables []*MembershipTable
	// epoch is the committed membership epoch (>= 1 on an elastic plane,
	// 0 on a replicated one — those planes are static).
	epoch uint64
	// rebalancing serializes AddShard/DrainShard: one membership change at
	// a time, plane-wide.
	rebalancing bool
	// retired holds drained shards kept alive so stale clients (cached
	// locators, in-flight reads) still get answers until ReleaseDrained.
	retired []*Container
}

// NewShardedContainer boots every shard, each on its own loopback address.
func NewShardedContainer(cfg ShardedConfig) (*ShardedContainer, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("runtime: sharded container needs >= 1 shard, got %d", cfg.Shards)
	}
	if len(cfg.Addrs) != 0 && len(cfg.Addrs) != cfg.Shards {
		return nil, fmt.Errorf("runtime: %d shards but %d addresses", cfg.Shards, len(cfg.Addrs))
	}
	if cfg.Replicas > cfg.Shards {
		cfg.Replicas = cfg.Shards
	}
	s := &ShardedContainer{
		cfg:    cfg,
		shards: make([]*Container, cfg.Shards),
		addrs:  make([]string, cfg.Shards),
	}
	if cfg.Replicas > 1 {
		// A replicated plane pre-listens every shard: replication needs the
		// full membership table up front (shippers, failover probes), but
		// the containers boot sequentially. Connections made to a not-yet-
		// booted shard simply wait in its accept backlog.
		liss := make([]net.Listener, cfg.Shards)
		for i := range liss {
			addr := "127.0.0.1:0"
			if len(cfg.Addrs) != 0 {
				addr = cfg.Addrs[i]
			}
			lis, err := net.Listen("tcp", addr)
			if err != nil {
				for _, l := range liss[:i] {
					l.Close()
				}
				return nil, fmt.Errorf("runtime: shard %d: listen %s: %w", i, addr, err)
			}
			liss[i] = lis
			s.addrs[i] = lis.Addr().String()
		}
		for i := range liss {
			ccfg := s.containerConfig(i, "")
			ccfg.Listener = liss[i]
			// SkipBootCheck: the whole plane is booting together here, so
			// no shard can have promoted anything while another was down.
			ccfg.Replication = s.replicationConfig(i, true)
			c, err := NewContainer(ccfg)
			if err != nil {
				for _, l := range liss[i:] {
					l.Close()
				}
				s.Close()
				return nil, fmt.Errorf("runtime: shard %d: %w", i, err)
			}
			s.shards[i] = c
		}
	} else {
		for i := 0; i < cfg.Shards; i++ {
			addr := "127.0.0.1:0"
			if len(cfg.Addrs) != 0 {
				addr = cfg.Addrs[i]
			}
			ccfg := s.containerConfig(i, addr)
			ccfg.Rebalance = s.rebalanceConfig(i, cfg.Shards)
			c, err := NewContainer(ccfg)
			if err != nil {
				s.Close()
				return nil, fmt.Errorf("runtime: shard %d: %w", i, err)
			}
			s.shards[i] = c
			s.addrs[i] = c.Addr()
		}
		// An elastic plane's epoch survives restarts through each shard's
		// persisted rebalance state; adopt the highest any shard recovered.
		s.epoch = 1
		for _, c := range s.shards {
			if rn := c.Rebalance(); rn != nil && rn.Epoch() > s.epoch {
				s.epoch = rn.Epoch()
			}
		}
	}
	// The membership table needs every address, so it mounts after all
	// shards are listening; mounting is idempotent per Mux.
	s.tables = make([]*MembershipTable, len(s.shards))
	for i, c := range s.shards {
		s.tables[i] = NewMembershipTable(i, s.addrs, cfg.Replicas, s.epoch)
		s.tables[i].Mount(c.Mux)
	}
	return s, nil
}

// replicationConfig derives shard i's replication wiring (nil when the
// plane is unreplicated).
func (s *ShardedContainer) replicationConfig(i int, skipBootCheck bool) *ReplicationConfig {
	if s.cfg.Replicas < 2 {
		return nil
	}
	rc := &ReplicationConfig{
		Shard:         i,
		Addrs:         s.addrs,
		Replicas:      s.cfg.Replicas,
		ProbeTimeout:  s.cfg.ReplProbeTimeout,
		SkipBootCheck: skipBootCheck,
		Logf:          s.cfg.ReplLogf,
	}
	if s.cfg.ReplDialOpts != nil {
		from, hook := i, s.cfg.ReplDialOpts
		rc.DialOpts = func(addr string) []rpc.DialOption { return hook(from, addr) }
	}
	return rc
}

// rebalanceConfig derives shard i's elastic-rebalance wiring (nil when the
// plane is replicated — R>1 planes reshape through repl, not rebalance).
func (s *ShardedContainer) rebalanceConfig(i, shards int) *RebalanceConfig {
	if s.cfg.Replicas > 1 {
		return nil
	}
	rc := &RebalanceConfig{
		Shard:  i,
		Shards: shards,
		Logf:   s.cfg.ReplLogf,
		OnCommit: func(epoch uint64, addrs []string) {
			s.publishEpoch(i, epoch, addrs)
		},
	}
	if s.cfg.ReplDialOpts != nil {
		from, hook := i, s.cfg.ReplDialOpts
		rc.DialOpts = func(addr string) []rpc.DialOption { return hook(from, addr) }
	}
	return rc
}

// publishEpoch updates shard i's membership table after its rebalance node
// committed a new epoch (no-op while the shard's table is not mounted yet —
// a joining shard's table is built from the committed view directly).
func (s *ShardedContainer) publishEpoch(i int, epoch uint64, addrs []string) {
	s.mu.Lock()
	var t *MembershipTable
	if i < len(s.tables) {
		t = s.tables[i]
	}
	s.mu.Unlock()
	if t != nil {
		t.Set(epoch, addrs)
	}
}

// containerConfig derives shard i's container configuration.
func (s *ShardedContainer) containerConfig(i int, addr string) ContainerConfig {
	cfg := ContainerConfig{
		Addr:         addr,
		CompactEvery: s.cfg.CompactEvery,
		DisableFTP:   s.cfg.DisableFTP,
		DisableHTTP:  s.cfg.DisableHTTP,
		DisableSwarm: s.cfg.DisableSwarm,
		FTPThrottle:  s.cfg.FTPThrottle,
		RPCOptions:   s.cfg.RPCOptions,
	}
	if s.cfg.StateDir != "" {
		cfg.StateDir = filepath.Join(s.cfg.StateDir, fmt.Sprintf("shard-%d", i))
	}
	return cfg
}

// N returns the shard count.
func (s *ShardedContainer) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.addrs)
}

// Addrs returns every shard's rpc address in placement order (the
// membership table clients must connect with).
func (s *ShardedContainer) Addrs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.addrs...)
}

// Epoch returns the committed membership epoch (0 on a replicated plane).
func (s *ShardedContainer) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Shard returns shard i's container (nil while that shard is killed or i is
// out of the current membership).
func (s *ShardedContainer) Shard(i int) *Container {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.shards) {
		return nil
	}
	return s.shards[i]
}

// KillShard stops shard i, releasing its sockets and store; its state
// directory (when durable) stays behind for RestartShard. The other shards
// keep serving — a client loses exactly the data homed on i.
func (s *ShardedContainer) KillShard(i int) error {
	s.mu.Lock()
	c := s.shards[i]
	s.shards[i] = nil
	s.mu.Unlock()
	if c == nil {
		return fmt.Errorf("runtime: shard %d already down", i)
	}
	return c.Close()
}

// RestartShard boots shard i again on its original address, recovering
// whatever its StateDir holds. It is the administrator-restart of the
// paper's transient fault model, per shard.
func (s *ShardedContainer) RestartShard(i int) error {
	s.mu.Lock()
	if i < 0 || i >= len(s.shards) {
		s.mu.Unlock()
		return fmt.Errorf("runtime: no shard %d in the current membership", i)
	}
	running := s.shards[i] != nil
	addr := s.addrs[i]
	addrs := append([]string(nil), s.addrs...)
	epoch := s.epoch
	s.mu.Unlock()
	if running {
		return fmt.Errorf("runtime: shard %d still running", i)
	}
	ccfg := s.containerConfig(i, addr)
	// A restarting shard must resolve ownership by probing: a successor may
	// have been promoted over its ranges while it was down, in which case
	// it rejoins as a replica instead of serving stale state.
	ccfg.Replication = s.replicationConfig(i, false)
	ccfg.Rebalance = s.rebalanceConfig(i, len(addrs))
	c, err := NewContainer(ccfg)
	if err != nil {
		return fmt.Errorf("runtime: restart shard %d: %w", i, err)
	}
	t := NewMembershipTable(i, addrs, s.cfg.Replicas, epoch)
	t.Mount(c.Mux)
	s.mu.Lock()
	s.shards[i] = c
	if i < len(s.tables) {
		s.tables[i] = t
	}
	s.mu.Unlock()
	return nil
}

// Replicas returns the plane's replication factor (0 or 1: unreplicated).
func (s *ShardedContainer) Replicas() int { return s.cfg.Replicas }

// WaitReplicated blocks until every live shard's outbound replication
// streams are fully acknowledged (snapshot synced, tail acked, content
// pulled), or the deadline passes. It is a healthy-plane barrier: while a
// shard is down, its peers' streams to it cannot converge and this returns
// an error at the deadline.
func (s *ShardedContainer) WaitReplicated(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for i := 0; i < s.N(); i++ {
		c := s.Shard(i)
		if c == nil || c.Repl() == nil {
			continue
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return fmt.Errorf("runtime: replication convergence timed out after %v", timeout)
		}
		if err := c.Repl().WaitReplicated(remaining); err != nil {
			return fmt.Errorf("runtime: shard %d: %w", i, err)
		}
	}
	return nil
}

// beginRebalance validates and reserves a plane-wide membership change,
// returning the current shard list, addresses, and epoch.
func (s *ShardedContainer) beginRebalance() ([]*Container, []string, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Replicas > 1 {
		return nil, nil, 0, fmt.Errorf("runtime: replicated planes reshape through repl, not elastic rebalancing")
	}
	if s.rebalancing {
		return nil, nil, 0, fmt.Errorf("runtime: a membership change is already in flight")
	}
	for i, c := range s.shards {
		if c == nil {
			return nil, nil, 0, fmt.Errorf("runtime: shard %d is down; restart it before reshaping the plane", i)
		}
	}
	s.rebalancing = true
	return append([]*Container(nil), s.shards...),
		append([]string(nil), s.addrs...), s.epoch, nil
}

func (s *ShardedContainer) endRebalance() {
	s.mu.Lock()
	s.rebalancing = false
	s.mu.Unlock()
}

// AddShard grows the plane by one shard under live traffic: it boots the
// new container (invisible to clients until commit), stages every source
// shard's moving key ranges onto it while the sources keep serving, cuts
// ownership over atomically per shard, then commits the bumped membership
// epoch everywhere. Returns the new shard's index.
func (s *ShardedContainer) AddShard() (int, error) {
	sources, cur, epoch, err := s.beginRebalance()
	if err != nil {
		return -1, err
	}
	newIdx := len(cur)
	// The joining shard boots already believing the NEW placement, so
	// installed rows pass its guard immediately; it is unreachable by
	// clients until the commit publishes its address.
	ccfg := s.containerConfig(newIdx, "127.0.0.1:0")
	ccfg.Rebalance = s.rebalanceConfig(newIdx, newIdx+1)
	c, err := NewContainer(ccfg)
	if err != nil {
		s.endRebalance()
		return -1, fmt.Errorf("runtime: booting shard %d: %w", newIdx, err)
	}
	newAddrs := append(append([]string(nil), cur...), c.Addr())
	abort := func() {
		for _, src := range sources {
			src.Rebalance().Abort()
		}
		c.Close()
		s.endRebalance()
	}
	// Stage in parallel: each source streams its moving catalog rows,
	// scheduler entries and content to the new shard.
	errs := make([]error, len(sources))
	var wg sync.WaitGroup
	for i, src := range sources {
		wg.Add(1)
		go func(i int, src *Container) {
			defer wg.Done()
			errs[i] = src.Rebalance().Stage(newAddrs)
		}(i, src)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			abort()
			return -1, fmt.Errorf("runtime: shard %d stage: %w", i, err)
		}
	}
	for i, src := range sources {
		if err := src.Rebalance().Cutover(); err != nil {
			abort()
			return -1, fmt.Errorf("runtime: shard %d cutover: %w", i, err)
		}
	}
	// Point of no return: every source now refuses its departed ranges.
	// Commit the bumped epoch everywhere (commit only errors on an epoch
	// regression, which cannot happen under the rebalancing reservation).
	epoch++
	var commitErr error
	for i, src := range sources {
		if err := src.Rebalance().Commit(epoch, newAddrs); err != nil && commitErr == nil {
			commitErr = fmt.Errorf("runtime: shard %d commit: %w", i, err)
		}
	}
	if err := c.Rebalance().Commit(epoch, newAddrs); err != nil && commitErr == nil {
		commitErr = fmt.Errorf("runtime: shard %d commit: %w", newIdx, err)
	}
	t := NewMembershipTable(newIdx, newAddrs, s.cfg.Replicas, epoch)
	t.Mount(c.Mux)
	s.mu.Lock()
	s.addrs = newAddrs
	s.shards = append(s.shards, c)
	s.tables = append(s.tables, t)
	s.epoch = epoch
	s.rebalancing = false
	s.mu.Unlock()
	return newIdx, commitErr
}

// DrainShard shrinks the plane by retiring the last shard: its rows,
// scheduler entries and content stream to their new homes among the
// survivors, ownership cuts over, and the shrunk membership commits at a
// bumped epoch. The drained container is kept ALIVE (its cached locators
// and in-flight reads still answer) until ReleaseDrained; its own commit
// makes it refuse every data operation with the not-owner handoff. Returns
// the retired shard's former index.
func (s *ShardedContainer) DrainShard() (int, error) {
	shards, cur, epoch, err := s.beginRebalance()
	if err != nil {
		return -1, err
	}
	n := len(cur)
	if n < 2 {
		s.endRebalance()
		return -1, fmt.Errorf("runtime: cannot drain the last shard")
	}
	last := shards[n-1]
	newAddrs := append([]string(nil), cur[:n-1]...)
	rn := last.Rebalance()
	if err := rn.Stage(newAddrs); err != nil {
		rn.Abort()
		s.endRebalance()
		return -1, fmt.Errorf("runtime: shard %d stage: %w", n-1, err)
	}
	if err := rn.Cutover(); err != nil {
		rn.Abort()
		s.endRebalance()
		return -1, fmt.Errorf("runtime: shard %d cutover: %w", n-1, err)
	}
	epoch++
	var commitErr error
	for i := 0; i < n-1; i++ {
		if err := shards[i].Rebalance().Commit(epoch, newAddrs); err != nil && commitErr == nil {
			commitErr = fmt.Errorf("runtime: shard %d commit: %w", i, err)
		}
	}
	// The drained shard commits last: from here it refuses everything and
	// garbage-collects its rows, while its membership table now points
	// lingering clients at the survivors.
	if err := rn.Commit(epoch, newAddrs); err != nil && commitErr == nil {
		commitErr = fmt.Errorf("runtime: shard %d commit: %w", n-1, err)
	}
	s.mu.Lock()
	s.addrs = newAddrs
	s.shards = s.shards[:n-1]
	s.tables = s.tables[:n-1]
	s.retired = append(s.retired, last)
	s.epoch = epoch
	s.rebalancing = false
	s.mu.Unlock()
	return n - 1, commitErr
}

// ReleaseDrained closes every container retired by DrainShard, once all
// clients have converged on the shrunk membership.
func (s *ShardedContainer) ReleaseDrained() error {
	s.mu.Lock()
	retired := s.retired
	s.retired = nil
	s.mu.Unlock()
	var first error
	for _, c := range retired {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close stops every live shard, returning the first error.
func (s *ShardedContainer) Close() error {
	s.mu.Lock()
	shards := append([]*Container(nil), s.shards...)
	shards = append(shards, s.retired...)
	for i := range s.shards {
		s.shards[i] = nil
	}
	s.retired = nil
	s.mu.Unlock()
	var first error
	for _, c := range shards {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
