package runtime_test

import (
	"fmt"
	"testing"

	"bitdew/internal/core"
	"bitdew/internal/data"
	"bitdew/internal/rpc"
	"bitdew/internal/runtime"
)

func TestShardedContainerBootAndMembership(t *testing.T) {
	plane, err := runtime.NewShardedContainer(runtime.ShardedConfig{
		Shards:       3,
		DisableFTP:   true,
		DisableSwarm: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()

	addrs := plane.Addrs()
	if len(addrs) != 3 {
		t.Fatalf("3-shard plane has %d addresses", len(addrs))
	}
	// Every shard serves the identical membership table, marked with its
	// own index.
	for i, addr := range addrs {
		c, err := rpc.DialAuto(addr)
		if err != nil {
			t.Fatalf("dial shard %d: %v", i, err)
		}
		table, err := runtime.Members(c)
		c.Close()
		if err != nil {
			t.Fatalf("membership of shard %d: %v", i, err)
		}
		if table.Self != i {
			t.Fatalf("shard %d announces itself as %d", i, table.Self)
		}
		if len(table.Addrs) != 3 || table.Addrs[i] != addr {
			t.Fatalf("shard %d membership %v, want self at %d = %s", i, table.Addrs, i, addr)
		}
	}
}

// TestShardedContainerPlacementAndSurvival drives data through a sharded
// plane, kills one shard, and checks data homed on the survivors stay fully
// served while the killed shard's are gone — the blast radius is exactly
// one shard.
func TestShardedContainerPlacementAndSurvival(t *testing.T) {
	plane, err := runtime.NewShardedContainer(runtime.ShardedConfig{
		Shards:       2,
		DisableFTP:   true,
		DisableSwarm: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()

	set, err := core.ConnectSharded(plane.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	node, err := core.NewNode(core.NodeConfig{Host: "client", Shards: set})
	if err != nil {
		t.Fatal(err)
	}
	node.SetClientOnly(true)

	const n = 24
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("datum-%02d", i)
	}
	ds, err := node.BitDew.CreateDataBatch(names)
	if err != nil {
		t.Fatal(err)
	}
	contents := make([][]byte, n)
	for i := range contents {
		contents[i] = []byte(fmt.Sprintf("payload %02d", i))
	}
	if err := node.BitDew.PutAll(ds, contents); err != nil {
		t.Fatal(err)
	}

	// Each datum's catalog entry must live on its home shard and only
	// there.
	perShard := make([]int, 2)
	for _, d := range ds {
		home := set.ShardOf(d.UID)
		perShard[home]++
		if _, err := plane.Shard(home).DC.Get(d.UID); err != nil {
			t.Fatalf("%s missing from home shard %d: %v", d.Name, home, err)
		}
		if _, err := plane.Shard(1 - home).DC.Get(d.UID); err == nil {
			t.Fatalf("%s leaked onto shard %d", d.Name, 1-home)
		}
	}
	if perShard[0] == 0 || perShard[1] == 0 {
		t.Fatalf("degenerate placement: %v (all data on one shard)", perShard)
	}

	// Kill shard 1; every datum homed on shard 0 stays fully reachable
	// through the same client.
	if err := plane.KillShard(1); err != nil {
		t.Fatal(err)
	}
	for i, d := range ds {
		if set.ShardOf(d.UID) != 0 {
			continue
		}
		got, err := node.BitDew.GetBytes(*d)
		if err != nil {
			t.Fatalf("surviving datum %s unreachable: %v", d.Name, err)
		}
		if string(got) != string(contents[i]) {
			t.Fatalf("surviving datum %s content %q, want %q", d.Name, got, contents[i])
		}
	}

	// A NEW client must be able to join the degraded plane with the full
	// membership list (the dead shard's connection is built lazily and
	// heals on restart)...
	lateSet, err := core.ConnectSharded(plane.Addrs())
	if err != nil {
		t.Fatalf("joining a degraded plane: %v", err)
	}
	defer lateSet.Close()
	fresh, err := core.NewNode(core.NodeConfig{Host: "late-client", Shards: lateSet})
	if err != nil {
		t.Fatal(err)
	}
	fresh.SetClientOnly(true)

	// ...searches answer with the SURVIVORS' view instead of failing
	// closed...
	listing, err := fresh.BitDew.AllData()
	if err != nil {
		t.Fatalf("AllData on a degraded plane: %v", err)
	}
	if len(listing) != perShard[0] {
		t.Fatalf("degraded AllData listed %d data, want the survivor's %d", len(listing), perShard[0])
	}

	// ...and a MIXED batch fetch over both shards' data must degrade per
	// datum: the dead shard's data error, the survivors' all land — one
	// shard's failure never gates the rest of the batch.
	fetchable := make([]data.Data, len(ds))
	for i, d := range ds {
		fetchable[i] = *d
	}
	err = fresh.BitDew.FetchAll(fetchable, "")
	if err == nil {
		t.Fatal("mixed FetchAll with a dead shard reported no error")
	}
	for i, d := range ds {
		got, gerr := fresh.Backend().Get(string(d.UID))
		if set.ShardOf(d.UID) == 0 {
			if gerr != nil || string(got) != string(contents[i]) {
				t.Fatalf("mixed fetch lost surviving datum %s: %q, %v", d.Name, got, gerr)
			}
		} else if gerr == nil {
			t.Fatalf("mixed fetch claims dead-shard datum %s", d.Name)
		}
	}
}

// TestShardedContainerRestartRecovers kills and restarts a durable shard
// and checks its data come back — the per-shard administrator-restart.
func TestShardedContainerRestartRecovers(t *testing.T) {
	plane, err := runtime.NewShardedContainer(runtime.ShardedConfig{
		Shards:       2,
		StateDir:     t.TempDir(),
		DisableFTP:   true,
		DisableSwarm: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()

	set, err := core.ConnectSharded(plane.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	defer set.Close()
	node, err := core.NewNode(core.NodeConfig{Host: "client", Shards: set})
	if err != nil {
		t.Fatal(err)
	}
	node.SetClientOnly(true)

	ds, err := node.BitDew.CreateDataBatch([]string{"a", "b", "c", "d", "e", "f"})
	if err != nil {
		t.Fatal(err)
	}
	contents := make([][]byte, len(ds))
	for i := range contents {
		contents[i] = []byte(fmt.Sprintf("content-%d", i))
	}
	if err := node.BitDew.PutAll(ds, contents); err != nil {
		t.Fatal(err)
	}

	for shard := 0; shard < 2; shard++ {
		if err := plane.KillShard(shard); err != nil {
			t.Fatal(err)
		}
		if err := plane.RestartShard(shard); err != nil {
			t.Fatal(err)
		}
	}
	for i, d := range ds {
		got, err := node.BitDew.GetBytes(*d)
		if err != nil {
			t.Fatalf("datum %s lost across shard restart: %v", d.Name, err)
		}
		if string(got) != string(contents[i]) {
			t.Fatalf("datum %s content %q, want %q", d.Name, got, contents[i])
		}
	}
}
