package runtime

import (
	"testing"

	"bitdew/internal/attr"
	"bitdew/internal/core"
	"bitdew/internal/data"
)

// TestContainerRestartFromStateDir kills a container and rebuilds it over
// the same state directory: catalog data + locators, scheduler placements
// and repository content must all survive.
func TestContainerRestartFromStateDir(t *testing.T) {
	dir := t.TempDir()
	cfg := ContainerConfig{StateDir: dir, DisableFTP: true, DisableSwarm: true}
	c, err := NewContainer(cfg)
	if err != nil {
		t.Fatal(err)
	}

	node, err := core.NewNode(core.NodeConfig{Host: "client", Comms: core.ConnectLocal(c.Mux)})
	if err != nil {
		t.Fatal(err)
	}
	node.SetClientOnly(true)
	d, err := node.BitDew.CreateData("survivor")
	if err != nil {
		t.Fatal(err)
	}
	if err := node.BitDew.Put(d, []byte("durable payload")); err != nil {
		t.Fatal(err)
	}
	if err := node.ActiveData.Schedule(*d, attr.Attribute{Name: "keep", Replica: 2, FaultTolerant: true}); err != nil {
		t.Fatal(err)
	}
	c.DS.Sync("w1", nil) // place one replica so a placement exists to lose

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := NewContainer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()

	// Catalog: datum and its locator survive.
	got, err := re.DC.Get(d.UID)
	if err != nil || got.Name != "survivor" {
		t.Fatalf("catalog after restart: %+v, %v", got, err)
	}
	locs, err := re.DC.Locators(d.UID)
	if err != nil || len(locs) == 0 {
		t.Fatalf("locators after restart: %v, %v", locs, err)
	}

	// Scheduler: the entry and w1's placement survive.
	entries := re.DS.Entries()
	if len(entries) != 1 || entries[0].Data.UID != d.UID || entries[0].Attr.Replica != 2 {
		t.Fatalf("scheduler entries after restart: %+v", entries)
	}
	if owners := re.DS.Owners(d.UID); len(owners) != 1 || owners[0] != "w1" {
		t.Fatalf("owners after restart: %v", owners)
	}

	// Repository: the content itself survives (DirBackend under StateDir),
	// and a fresh node can fetch it.
	node2, err := core.NewNode(core.NodeConfig{Host: "client2", Comms: core.ConnectLocal(re.Mux)})
	if err != nil {
		t.Fatal(err)
	}
	content, err := node2.BitDew.GetBytes(got)
	if err != nil || string(content) != "durable payload" {
		t.Fatalf("content after restart = %q, %v", content, err)
	}
}

// TestContainerCheckpoint verifies Checkpoint compacts the durable store.
func TestContainerCheckpoint(t *testing.T) {
	dir := t.TempDir()
	c, err := NewContainer(ContainerConfig{StateDir: dir, DisableFTP: true, DisableHTTP: true, DisableSwarm: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		if err := c.DC.Register(*data.New("d")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if n := c.ownStore.WALRecords(); n != 0 {
		t.Fatalf("WAL records after Checkpoint = %d, want 0", n)
	}
}
