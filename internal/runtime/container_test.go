package runtime

import (
	"bytes"
	"math/rand"
	"testing"

	"bitdew/internal/core"
	"bitdew/internal/data"
	"bitdew/internal/db"
	"bitdew/internal/repository"
)

func TestContainerServesAllServices(t *testing.T) {
	c, err := NewContainer(ContainerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := c.Mux.Services()
	want := []string{"dc", "dr", "ds", "dt"}
	if len(got) != len(want) {
		t.Fatalf("Services = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Services = %v, want %v", got, want)
		}
	}
	protos := c.DR.Protocols()
	if len(protos) != 3 {
		t.Errorf("Protocols = %v, want ftp+http+bittorrent", protos)
	}
}

func TestContainerDisableProtocols(t *testing.T) {
	c, err := NewContainer(ContainerConfig{DisableFTP: true, DisableSwarm: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	protos := c.DR.Protocols()
	if len(protos) != 1 || protos[0] != "http" {
		t.Errorf("Protocols = %v, want [http]", protos)
	}
	if c.FTP != nil || c.Tracker != nil {
		t.Error("disabled servers were started")
	}
}

func TestContainerTCPAddr(t *testing.T) {
	c, err := NewContainer(ContainerConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Addr() == "" {
		t.Fatal("no rpc address")
	}
	comms, err := core.Connect(c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer comms.Close()
	if _, err := comms.DC.All(); err != nil {
		t.Errorf("DC over TCP: %v", err)
	}
	inproc, err := NewContainer(ContainerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer inproc.Close()
	if inproc.Addr() != "" {
		t.Errorf("in-process container has address %q", inproc.Addr())
	}
}

func TestSeederHookStartsOnce(t *testing.T) {
	c, err := NewContainer(ContainerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	content := make([]byte, 100_000)
	rand.New(rand.NewSource(1)).Read(content)
	d := data.NewFromBytes("swarmed", content)
	if err := c.DR.Backend().Put(string(d.UID), content); err != nil {
		t.Fatal(err)
	}
	// First bittorrent locator starts the seeder; second reuses it.
	l1, err := c.DR.Locator(d.UID, "bittorrent")
	if err != nil {
		t.Fatal(err)
	}
	l2, err := c.DR.Locator(d.UID, "bittorrent")
	if err != nil {
		t.Fatal(err)
	}
	if l1.Host != l2.Host {
		t.Errorf("locators differ: %v vs %v", l1, l2)
	}
	c.mu.Lock()
	nSeeders := len(c.seeders)
	c.mu.Unlock()
	if nSeeders != 1 {
		t.Errorf("seeders = %d, want 1", nSeeders)
	}
	// Locator for content the repository does not hold fails.
	if _, err := c.DR.Locator(data.NewUID(), "bittorrent"); err == nil {
		t.Error("seeder started for absent content")
	}
}

func TestContainerCloseIdempotent(t *testing.T) {
	c, err := NewContainer(ContainerConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTransientServiceFailureRecovery replays the paper's fault model for
// service hosts: the container crashes, an administrator restarts it, and
// the catalog's meta-data come back from the WAL.
func TestTransientServiceFailureRecovery(t *testing.T) {
	var wal bytes.Buffer
	store := db.NewRowStore(db.WithWAL(&wal))
	backend := repository.NewMemBackend()
	c1, err := NewContainer(ContainerConfig{Store: store, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	node, err := core.NewNode(core.NodeConfig{Host: "client", Comms: core.ConnectLocal(c1.Mux)})
	if err != nil {
		t.Fatal(err)
	}
	d, err := node.BitDew.CreateData("survives")
	if err != nil {
		t.Fatal(err)
	}
	if err := node.BitDew.Put(d, []byte("durable content")); err != nil {
		t.Fatal(err)
	}
	c1.Close() // crash

	// Restart: new container, state replayed from the WAL, same backend
	// (repository content is on persistent storage in a real deployment).
	recovered := db.NewRowStore()
	if err := recovered.Replay(bytes.NewReader(wal.Bytes())); err != nil {
		t.Fatal(err)
	}
	c2, err := NewContainer(ContainerConfig{Store: recovered, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	node2, err := core.NewNode(core.NodeConfig{Host: "client2", Comms: core.ConnectLocal(c2.Mux)})
	if err != nil {
		t.Fatal(err)
	}
	found, err := node2.BitDew.SearchDataFirst("survives")
	if err != nil {
		t.Fatalf("datum lost across restart: %v", err)
	}
	got, err := node2.BitDew.GetBytes(found)
	if err != nil || string(got) != "durable content" {
		t.Fatalf("content after restart = %q, %v", got, err)
	}
}

func TestFTPThrottleOption(t *testing.T) {
	c, err := NewContainer(ContainerConfig{FTPThrottle: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.FTP == nil {
		t.Fatal("ftp server missing")
	}
}
