// Package data defines BitDew's data model: the Data object describing a
// slot in the virtual data space, the Locator giving remote access to a
// concrete copy, and the AUID-style unique identifiers used to reference
// every object in the system (paper §3.3 and §3.4.1).
package data

import (
	"crypto/md5"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"strings"
	"sync/atomic"
	"time"
)

// UID is the unique identifier of a BitDew object. The paper references every
// object with an AUID, a variant of the DCE UID; ours is a 128-bit value
// combining a timestamp, a process-wide counter and random bits, rendered in
// hexadecimal groups.
type UID string

var uidCounter atomic.Uint64

// NewUID returns a fresh unique identifier.
func NewUID() UID {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(time.Now().UnixNano()))
	binary.BigEndian.PutUint32(b[8:12], uint32(uidCounter.Add(1)))
	if _, err := rand.Read(b[12:16]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to the
		// counter so UIDs stay unique within the process regardless.
		binary.BigEndian.PutUint32(b[12:16], uint32(uidCounter.Add(1)))
	}
	s := hex.EncodeToString(b[:])
	return UID(s[0:8] + "-" + s[8:16] + "-" + s[16:24] + "-" + s[24:32])
}

// Valid reports whether the UID has the canonical four-group shape.
func (u UID) Valid() bool {
	parts := strings.Split(string(u), "-")
	if len(parts) != 4 {
		return false
	}
	for _, p := range parts {
		if len(p) != 8 {
			return false
		}
		if _, err := hex.DecodeString(p); err != nil {
			return false
		}
	}
	return true
}

// Flags is an OR-combination of data properties (paper §3.3).
type Flags uint32

const (
	// FlagCompressed marks content stored compressed (e.g. the BLAST
	// genebase archive, unzipped on the worker).
	FlagCompressed Flags = 1 << iota
	// FlagExecutable marks binary application files.
	FlagExecutable
	// FlagArchDependent marks architecture-dependent content.
	FlagArchDependent
)

// Has reports whether all bits of q are set in f.
func (f Flags) Has(q Flags) bool { return f&q == q }

func (f Flags) String() string {
	var parts []string
	if f.Has(FlagCompressed) {
		parts = append(parts, "compressed")
	}
	if f.Has(FlagExecutable) {
		parts = append(parts, "executable")
	}
	if f.Has(FlagArchDependent) {
		parts = append(parts, "arch-dependent")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// Data describes one slot of the BitDew data space. A Data may exist before
// any content is attached (an empty slot created by createData and filled
// later by put), in which case Size is zero and Checksum empty.
type Data struct {
	// UID uniquely identifies the slot system-wide.
	UID UID
	// Name is the human label; unlike the UID it need not be unique, and
	// searchData retrieves data by name.
	Name string
	// Checksum is the hex MD5 signature of the content; it doubles as the
	// integrity check for receiver-driven transfers and as the sabotage-
	// detection handle discussed in paper §2.2.
	Checksum string
	// Size is the content length in bytes.
	Size int64
	// Flags carries the OR-combination of content properties.
	Flags Flags
	// Created is the slot creation time.
	Created time.Time
}

// New creates an empty data slot with the given name.
func New(name string) *Data {
	return &Data{UID: NewUID(), Name: name, Created: time.Now()}
}

// NewFromBytes creates a data slot whose meta-information (size, MD5) is
// computed from the given content.
func NewFromBytes(name string, content []byte) *Data {
	d := New(name)
	d.Size = int64(len(content))
	d.Checksum = ChecksumBytes(content)
	return d
}

// NewFromFile creates a data slot from a file on the local file system,
// computing size and MD5 the way the Java API does when creating a datum
// from a java.io.File.
func NewFromFile(path string) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("data: %w", err)
	}
	sum, err := ChecksumReader(f)
	if err != nil {
		return nil, fmt.Errorf("data: checksum %s: %w", path, err)
	}
	d := New(baseName(path))
	d.Size = st.Size()
	d.Checksum = sum
	return d, nil
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// WithContent returns a copy of d updated for new content.
func (d Data) WithContent(content []byte) *Data {
	d.Size = int64(len(content))
	d.Checksum = ChecksumBytes(content)
	return &d
}

// Matches reports whether content has the size and checksum recorded in d.
// It is the receiver-side integrity check of the Data Transfer service.
func (d *Data) Matches(content []byte) bool {
	return int64(len(content)) == d.Size && ChecksumBytes(content) == d.Checksum
}

func (d *Data) String() string {
	return fmt.Sprintf("data %s (uid %s, %d bytes, md5 %.8s, flags %s)",
		d.Name, d.UID, d.Size, d.Checksum, d.Flags)
}

// ChecksumBytes returns the hex MD5 of content.
func ChecksumBytes(content []byte) string {
	sum := md5.Sum(content)
	return hex.EncodeToString(sum[:])
}

// ChecksumReader returns the hex MD5 of everything readable from r.
func ChecksumReader(r io.Reader) (string, error) {
	h := md5.New()
	if _, err := io.Copy(h, r); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Locator tells a node how to remotely access one concrete copy of a datum,
// like a URL: protocol, host endpoint, remote reference (path or hash key)
// and optional credentials (paper §3.4.1).
type Locator struct {
	// DataUID is the datum this locator serves.
	DataUID UID
	// Protocol is the transfer protocol name ("ftp", "http", "bittorrent").
	Protocol string
	// Host is the endpoint, host:port.
	Host string
	// Ref is the remote file identification: a path, file name or hash key
	// depending on the protocol.
	Ref string
	// Login and Password carry protocol credentials when required.
	Login    string
	Password string
}

func (l Locator) String() string {
	host := l.Host
	if l.Login != "" {
		host = l.Login + "@" + host
	}
	return fmt.Sprintf("%s://%s/%s", l.Protocol, host, l.Ref)
}

// Validate reports the first structural problem with the locator, or nil.
func (l Locator) Validate() error {
	if l.DataUID == "" {
		return fmt.Errorf("locator: missing data uid")
	}
	if l.Protocol == "" {
		return fmt.Errorf("locator %s: missing protocol", l.DataUID)
	}
	if l.Host == "" {
		return fmt.Errorf("locator %s: missing host", l.DataUID)
	}
	return nil
}
