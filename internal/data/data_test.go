package data

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewUIDUnique(t *testing.T) {
	seen := make(map[UID]bool)
	for i := 0; i < 10000; i++ {
		u := NewUID()
		if seen[u] {
			t.Fatalf("duplicate UID %s after %d draws", u, i)
		}
		seen[u] = true
	}
}

func TestNewUIDConcurrentUnique(t *testing.T) {
	const workers, per = 8, 2000
	var mu sync.Mutex
	seen := make(map[UID]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]UID, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, NewUID())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, u := range local {
				if seen[u] {
					t.Errorf("duplicate UID %s", u)
				}
				seen[u] = true
			}
		}()
	}
	wg.Wait()
}

func TestUIDValid(t *testing.T) {
	if u := NewUID(); !u.Valid() {
		t.Errorf("NewUID() = %s is not Valid", u)
	}
	for _, bad := range []UID{"", "xyz", "0000-0000-0000-0000", "00000000-00000000-00000000-0000000g"} {
		if bad.Valid() {
			t.Errorf("UID %q unexpectedly Valid", bad)
		}
	}
}

func TestNewFromBytes(t *testing.T) {
	content := []byte("the quick brown fox")
	d := NewFromBytes("fox", content)
	if d.Name != "fox" {
		t.Errorf("Name = %q", d.Name)
	}
	if d.Size != int64(len(content)) {
		t.Errorf("Size = %d, want %d", d.Size, len(content))
	}
	if d.Checksum != ChecksumBytes(content) {
		t.Errorf("Checksum mismatch")
	}
	if !d.Matches(content) {
		t.Errorf("Matches(content) = false")
	}
	if d.Matches([]byte("tampered")) {
		t.Errorf("Matches(tampered) = true")
	}
}

func TestNewFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "big_data_to_update")
	content := bytes.Repeat([]byte("bitdew"), 1000)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := NewFromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "big_data_to_update" {
		t.Errorf("Name = %q", d.Name)
	}
	if !d.Matches(content) {
		t.Errorf("file content does not match its own data object")
	}
}

func TestNewFromFileMissing(t *testing.T) {
	if _, err := NewFromFile("/nonexistent/nope"); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestChecksumReaderMatchesBytes(t *testing.T) {
	content := []byte("abcdefgh")
	got, err := ChecksumReader(bytes.NewReader(content))
	if err != nil {
		t.Fatal(err)
	}
	if got != ChecksumBytes(content) {
		t.Errorf("reader %s != bytes %s", got, ChecksumBytes(content))
	}
}

func TestQuickChecksumDistinguishesContent(t *testing.T) {
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return ChecksumBytes(a) == ChecksumBytes(b)
		}
		return ChecksumBytes(a) != ChecksumBytes(b) || len(a) != len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMatchesRoundTrip(t *testing.T) {
	f := func(name string, content []byte) bool {
		d := NewFromBytes(name, content)
		return d.Matches(content)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithContent(t *testing.T) {
	d := New("slot")
	if d.Size != 0 || d.Checksum != "" {
		t.Fatalf("empty slot has content meta: %+v", d)
	}
	d2 := d.WithContent([]byte("filled"))
	if d2.UID != d.UID {
		t.Errorf("WithContent changed UID")
	}
	if !d2.Matches([]byte("filled")) {
		t.Errorf("WithContent meta wrong")
	}
	if d.Size != 0 {
		t.Errorf("WithContent mutated the original")
	}
}

func TestFlags(t *testing.T) {
	f := FlagCompressed | FlagExecutable
	if !f.Has(FlagCompressed) || !f.Has(FlagExecutable) || f.Has(FlagArchDependent) {
		t.Errorf("flag bits wrong: %s", f)
	}
	if s := f.String(); !strings.Contains(s, "compressed") || !strings.Contains(s, "executable") {
		t.Errorf("String() = %q", s)
	}
	if Flags(0).String() != "none" {
		t.Errorf("zero flags String() = %q", Flags(0).String())
	}
}

func TestLocator(t *testing.T) {
	l := Locator{DataUID: NewUID(), Protocol: "ftp", Host: "h:21", Ref: "path/x", Login: "anon"}
	if err := l.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if s := l.String(); !strings.HasPrefix(s, "ftp://anon@h:21/") {
		t.Errorf("String() = %q", s)
	}
	for _, bad := range []Locator{
		{},
		{DataUID: "u"},
		{DataUID: "u", Protocol: "ftp"},
	} {
		if bad.Validate() == nil {
			t.Errorf("Validate(%+v) = nil, want error", bad)
		}
	}
}

func TestDataString(t *testing.T) {
	d := NewFromBytes("n", []byte("c"))
	s := d.String()
	if !strings.Contains(s, "n") || !strings.Contains(s, string(d.UID)) {
		t.Errorf("String() = %q", s)
	}
}

func TestBaseName(t *testing.T) {
	cases := map[string]string{
		"/a/b/c.txt": "c.txt",
		"c.txt":      "c.txt",
		"/c":         "c",
	}
	for in, want := range cases {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}
