package loadgen

import (
	"fmt"
	"math/rand"

	"bitdew/internal/attr"
	"bitdew/internal/core"
	"bitdew/internal/data"
	"bitdew/internal/repository"
	"bitdew/internal/transfer"
)

// PlaneConfig parameterises a load run against a real (optionally sharded)
// D* service plane.
type PlaneConfig struct {
	// Addrs is the plane's membership list (core.ConnectSharded order).
	Addrs []string
	// Replicas is the plane's replication factor; >1 makes every client
	// connection failover-aware (core.WithReplicas).
	Replicas int
	// Conns is the number of shared service connections the simulated
	// clients multiplex over — the million-client traffic model: each
	// connection is pipelined and batch-capable, so thousands of clients
	// ride a bounded connection pool exactly as a real deployment would
	// front the plane with per-pool Comms (default 8).
	Conns int
	// PayloadBytes sizes put payloads and preloaded content (default 256).
	PayloadBytes int
	// Preload is the number of data created before the clock starts, the
	// targets of fetch/schedule/search traffic (default 128).
	Preload int
	// SlotsPerClient is each client's ring of put targets: puts cycle
	// through the ring, so repository and catalog state stay bounded no
	// matter how long the run (default 16).
	SlotsPerClient int
	// Host is the client identity prefix towards the services.
	Host string
}

func (c *PlaneConfig) defaults() {
	if c.Conns <= 0 {
		c.Conns = 8
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 256
	}
	if c.Preload <= 0 {
		c.Preload = 128
	}
	if c.SlotsPerClient <= 0 {
		c.SlotsPerClient = 16
	}
	if c.Host == "" {
		c.Host = "stress"
	}
}

// Plane is the shared fixture of a load run: the connection pool, the
// per-connection API instances and the preloaded target data. Build it
// once, hand its Factory to Run, Close it after.
type Plane struct {
	cfg   PlaneConfig
	sets  []*core.ShardSet
	bds   []*core.BitDew
	ads   []*core.ActiveData
	pre   []data.Data
	names []string
}

// ConnectPlane dials the plane and preloads the fetch/schedule/search
// targets (Preload data of PayloadBytes each, named stress-pre-NNNN).
func ConnectPlane(cfg PlaneConfig) (*Plane, error) {
	cfg.defaults()
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("loadgen: plane needs at least one service address")
	}
	p := &Plane{cfg: cfg}
	for i := 0; i < cfg.Conns; i++ {
		set, err := core.ConnectSharded(cfg.Addrs, core.WithReplicas(cfg.Replicas))
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("loadgen: conn %d: %w", i, err)
		}
		p.sets = append(p.sets, set)
		backend := repository.NewMemBackend()
		engine := transfer.NewEngineRouted(backend, func(uid data.UID) *transfer.Client {
			return set.For(uid).DT
		}, fmt.Sprintf("%s-c%02d", cfg.Host, i), 64)
		p.bds = append(p.bds, core.NewBitDewSharded(set, backend, engine, cfg.Host))
		p.ads = append(p.ads, core.NewActiveDataSharded(set))
	}

	// Preload the shared targets through the first connection.
	names := make([]string, cfg.Preload)
	contents := make([][]byte, cfg.Preload)
	rng := rand.New(rand.NewSource(42))
	for i := range names {
		names[i] = fmt.Sprintf("stress-pre-%04d", i)
		contents[i] = make([]byte, cfg.PayloadBytes)
		rng.Read(contents[i])
	}
	ds, err := p.bds[0].CreateDataBatch(names)
	if err != nil {
		p.Close()
		return nil, fmt.Errorf("loadgen: preload: %w", err)
	}
	if err := p.bds[0].PutAll(ds, contents); err != nil {
		p.Close()
		return nil, fmt.Errorf("loadgen: preload: %w", err)
	}
	p.pre = make([]data.Data, len(ds))
	for i, d := range ds {
		p.pre[i] = *d
	}
	p.names = names
	return p, nil
}

// Factory returns the per-client Ops builder: each client shares one of the
// pooled connections (round-robin) and owns a private ring of put slots.
func (p *Plane) Factory() Factory {
	return func(client int) (Ops, error) {
		conn := client % len(p.bds)
		ops := &planeOps{
			plane:   p,
			bd:      p.bds[conn],
			ad:      p.ads[conn],
			payload: make([]byte, p.cfg.PayloadBytes),
		}
		names := make([]string, p.cfg.SlotsPerClient)
		for i := range names {
			names[i] = fmt.Sprintf("%s-%04d-s%02d", p.cfg.Host, client, i)
		}
		slots, err := ops.bd.CreateDataBatch(names)
		if err != nil {
			return nil, fmt.Errorf("creating put slots: %w", err)
		}
		ops.slots = slots
		return ops, nil
	}
}

// Addrs returns the membership list the plane was connected with.
func (p *Plane) Addrs() []string { return p.cfg.Addrs }

// Conns returns the size of the shared connection pool.
func (p *Plane) Conns() int { return len(p.bds) }

// PayloadBytes returns the effective payload size (after defaulting).
func (p *Plane) PayloadBytes() int { return p.cfg.PayloadBytes }

// RoundTrips sums the request frames sent over the connection pool.
func (p *Plane) RoundTrips() uint64 {
	var total uint64
	for _, s := range p.sets {
		total += s.RoundTrips()
	}
	return total
}

// Close releases the connection pool.
func (p *Plane) Close() error {
	var first error
	for _, s := range p.sets {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// planeOps is one simulated client. The APIs it drives are themselves safe
// for concurrent use, so sharing them across the connection's clients is
// fine; the slot ring and payload buffer are private.
type planeOps struct {
	plane   *Plane
	bd      *core.BitDew
	ad      *core.ActiveData
	slots   []*data.Data
	next    int
	payload []byte
}

// scheduleOrderAttr is the attribute every schedule op submits: one live
// replica, fault-tolerant, moved over HTTP — the wave profile of the
// BLAST-style workloads.
var scheduleOrderAttr = attr.Attribute{Name: "stress", Replica: 1, FaultTolerant: true, Protocol: "http"}

// Do issues one operation of the given class.
func (o *planeOps) Do(kind OpKind, r *rand.Rand) error {
	switch kind {
	case OpPut:
		// Refill the next slot of the private ring with fresh content: a
		// catalog re-register, a repository upload, a locator publish.
		slot := o.slots[o.next%len(o.slots)]
		o.next++
		r.Read(o.payload)
		return o.bd.Put(slot, o.payload)
	case OpFetch:
		// Download a random preloaded datum: locator lookup (cached after
		// the first hit, healing when stale) plus an out-of-band transfer.
		d := o.plane.pre[r.Intn(len(o.plane.pre))]
		_, err := o.bd.GetBytes(d)
		return err
	case OpSchedule:
		// Submit a schedule order for a random preloaded datum to its home
		// shard's Data Scheduler.
		d := o.plane.pre[r.Intn(len(o.plane.pre))]
		return o.ad.Schedule(d, scheduleOrderAttr)
	case OpSearch:
		// Search the catalog by name — a fan-out scan over every shard.
		name := o.plane.names[r.Intn(len(o.plane.names))]
		found, err := o.bd.SearchData(name)
		if err != nil {
			return err
		}
		if len(found) == 0 {
			return fmt.Errorf("loadgen: search %s: no match", name)
		}
		return nil
	}
	return fmt.Errorf("loadgen: unknown op %v", kind)
}

// Close releases the client (the pooled connection stays open for the
// other clients sharing it; Plane.Close tears it down).
func (o *planeOps) Close() error { return nil }
