package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// LatencyMS is a latency summary in milliseconds — the unit every
// BENCH_*.json carries so reports diff cleanly across runs.
type LatencyMS struct {
	P50  float64 `json:"p50_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
	Max  float64 `json:"max_ms"`
	Mean float64 `json:"mean_ms"`
}

func latencyMS(h *Hist) LatencyMS {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencyMS{
		P50:  ms(h.Quantile(0.50)),
		P99:  ms(h.Quantile(0.99)),
		P999: ms(h.Quantile(0.999)),
		Max:  ms(h.Max()),
		Mean: ms(h.Mean()),
	}
}

// OpReport is one op class's line of the report.
type OpReport struct {
	Ops     uint64    `json:"ops"`
	Errors  uint64    `json:"errors"`
	Rate    float64   `json:"ops_per_sec"`
	Latency LatencyMS `json:"latency"`
}

// Report is the machine-readable outcome of a load run — the schema of the
// BENCH_*.json trajectory files. cmd/bench-tables ingests these and renders
// the trajectory as a markdown table.
type Report struct {
	// Name tags the scenario ("stress" for cmd/bitdew-stress's default).
	Name string `json:"name"`
	// GeneratedAt is the RFC 3339 time the run finished.
	GeneratedAt string `json:"generated_at"`
	// Scenario describes the run's shape.
	Scenario struct {
		Shards   int    `json:"shards"`
		Clients  int    `json:"clients"`
		Conns    int    `json:"conns"`
		Mix      string `json:"mix"`
		Arrival  string `json:"arrival"` // "closed" or "open@<rate>"
		Duration string `json:"duration"`
		Warmup   string `json:"warmup"`
		Payload  int    `json:"payload_bytes"`
	} `json:"scenario"`
	ElapsedSec float64              `json:"elapsed_sec"`
	Throughput float64              `json:"throughput_ops_per_sec"`
	Ops        uint64               `json:"ops"`
	Errors     uint64               `json:"errors"`
	Shed       uint64               `json:"shed"`
	Latency    LatencyMS            `json:"latency"`
	PerOp      map[string]*OpReport `json:"per_op"`
	// ErrorSamples holds up to a handful of distinct error messages when
	// Errors > 0, so a failed CI smoke is diagnosable from the artifact.
	ErrorSamples []string `json:"error_samples,omitempty"`
}

// BuildReport folds a Result into the serializable report. shards and conns
// describe the plane the run hit (0 when unknown).
func BuildReport(name string, res *Result, shards, conns, payload int) *Report {
	rep := &Report{
		Name:         name,
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		ElapsedSec:   res.Elapsed.Seconds(),
		Throughput:   res.Throughput(),
		Ops:          res.Ops,
		Errors:       res.Errors,
		Shed:         res.Shed,
		Latency:      latencyMS(res.All),
		PerOp:        make(map[string]*OpReport),
		ErrorSamples: res.ErrorSamples,
	}
	rep.Scenario.Shards = shards
	rep.Scenario.Clients = res.Config.Clients
	rep.Scenario.Conns = conns
	rep.Scenario.Mix = res.Config.Mix.String()
	rep.Scenario.Arrival = "closed"
	if res.Config.OpenLoop {
		rep.Scenario.Arrival = fmt.Sprintf("open@%g", res.Config.Rate)
	}
	rep.Scenario.Duration = res.Config.Duration.String()
	rep.Scenario.Warmup = res.Config.Warmup.String()
	rep.Scenario.Payload = payload
	for kind, stats := range res.PerOp {
		rate := 0.0
		if res.Elapsed > 0 {
			rate = float64(stats.Count) / res.Elapsed.Seconds()
		}
		rep.PerOp[kind.String()] = &OpReport{
			Ops:     stats.Count,
			Errors:  stats.Errors,
			Rate:    rate,
			Latency: latencyMS(stats.Hist),
		}
	}
	return rep
}

// WriteJSON writes the report to path, indented, with a trailing newline so
// the file diffs cleanly under version control.
func (r *Report) WriteJSON(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("loadgen: encoding report: %w", err)
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ReadReport parses one BENCH_*.json file.
func ReadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("loadgen: parsing %s: %w", path, err)
	}
	return &rep, nil
}

// Summary renders the human-readable run summary cmd/bitdew-stress prints.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %.0f ops/sec over %.1fs (%d ops, %d errors",
		r.Name, r.Throughput, r.ElapsedSec, r.Ops, r.Errors)
	if r.Shed > 0 {
		fmt.Fprintf(&b, ", %d shed", r.Shed)
	}
	fmt.Fprintf(&b, ")\n")
	fmt.Fprintf(&b, "  scenario: %d shards, %d clients over %d conns, mix %s, arrival %s, %s payload %dB\n",
		r.Scenario.Shards, r.Scenario.Clients, r.Scenario.Conns,
		r.Scenario.Mix, r.Scenario.Arrival, r.Scenario.Duration, r.Scenario.Payload)
	fmt.Fprintf(&b, "  %-10s %10s %10s %10s %10s %10s %10s\n",
		"op", "ops", "ops/sec", "p50 ms", "p99 ms", "p999 ms", "max ms")
	fmt.Fprintf(&b, "  %-10s %10d %10.0f %10.3f %10.3f %10.3f %10.3f\n",
		"all", r.Ops, r.Throughput, r.Latency.P50, r.Latency.P99, r.Latency.P999, r.Latency.Max)
	names := make([]string, 0, len(r.PerOp))
	for name := range r.PerOp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		op := r.PerOp[name]
		fmt.Fprintf(&b, "  %-10s %10d %10.0f %10.3f %10.3f %10.3f %10.3f\n",
			name, op.Ops, op.Rate, op.Latency.P50, op.Latency.P99, op.Latency.P999, op.Latency.Max)
	}
	for _, s := range r.ErrorSamples {
		fmt.Fprintf(&b, "  error: %s\n", s)
	}
	return b.String()
}
