// Package loadgen is the sustained-load harness behind cmd/bitdew-stress:
// it models the paper's evaluation conditions (§5, Fig. 3 — many nodes
// hammering the D* services at once) as a configurable mix of
// put/fetch/schedule/search operations issued by thousands of simulated
// clients, with open- or closed-loop arrival, a warmup phase, and per-op
// latency recorded into HDR-style histograms. Results serialize to
// machine-readable BENCH_*.json reports so the performance trajectory is
// tracked across changes (cmd/bench-tables renders the trajectory).
package loadgen

import (
	"math/bits"
	"time"
)

// The histogram is log-linear, the layout HdrHistogram popularised: values
// below 2^histSubBits index their bucket directly, and every octave above
// that is split into 2^(histSubBits-1) linear sub-buckets, so the bucket
// width tracks the magnitude and the relative quantile error stays below
// 2^-(histSubBits-1) (~3% here) across the whole range. Counts are fixed-size
// arrays — recording is one index computation and one increment, no
// allocation — which is what lets every load-generator worker keep private
// histograms on its hot path and merge them after the run.
const (
	histSubBits = 6 // 64 direct values, 32 sub-buckets per octave
	histSubHalf = 1 << (histSubBits - 1)
	// histBuckets covers the full uint64 range: 2^histSubBits direct slots
	// plus 32 sub-buckets for each of the remaining octaves.
	histBuckets = (1 << histSubBits) + (64-histSubBits)*histSubHalf
)

// Hist is a fixed-footprint latency histogram with ~3% relative quantile
// error. The zero value is ready to use. Not safe for concurrent use: give
// each worker its own and Merge them.
type Hist struct {
	counts [histBuckets]uint64
	total  uint64
	sum    int64
	min    int64
	max    int64
}

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	u := uint64(v)
	if u < 1<<histSubBits {
		return int(u)
	}
	e := bits.Len64(u)              // u in [2^(e-1), 2^e), e > histSubBits
	sub := u >> uint(e-histSubBits) // keep histSubBits significant bits
	return 1<<histSubBits +         // direct slots
		(e-histSubBits-1)*histSubHalf + // full octaves below this one
		int(sub) - histSubHalf // linear position inside the octave
}

// bucketHigh returns the largest value mapping to bucket index i — the
// value quantiles report, so a quantile never understates the latency it
// stands for.
func bucketHigh(i int) int64 {
	if i < 1<<histSubBits {
		return int64(i)
	}
	o := i - 1<<histSubBits
	e := o/histSubHalf + histSubBits + 1 // octave: values in [2^(e-1), 2^e)
	sub := uint64(o%histSubHalf + histSubHalf)
	return int64((sub+1)<<uint(e-histSubBits) - 1)
}

// Record adds one latency sample. Negative durations count as zero.
func (h *Hist) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.sum += v
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.total++
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.total }

// Min returns the smallest recorded sample (0 when empty).
func (h *Hist) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest recorded sample (0 when empty).
func (h *Hist) Max() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// Mean returns the arithmetic mean of the samples (0 when empty).
func (h *Hist) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.total))
}

// Quantile returns the latency at quantile q in [0, 1]: the upper bound of
// the bucket holding the ceil(q*count)-th sample, clamped to the recorded
// extrema so p0 and p100 are exact. An empty histogram reports 0.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if rank < 1 {
		rank = 1
	}
	if rank > h.total {
		rank = h.total
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketHigh(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Merge folds o's samples into h (per-worker histograms into the run total).
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.total == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.sum += o.sum
	h.total += o.total
}
