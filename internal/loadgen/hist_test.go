package loadgen

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// histRelTolerance is the histogram's designed relative quantile error:
// octaves split into 2^(histSubBits-1) linear sub-buckets bound the error
// by 1/2^(histSubBits-1).
const histRelTolerance = 1.0 / histSubHalf

// oracleQuantile is the exact quantile over a sorted sample slice, using
// the same nearest-rank definition the histogram implements.
func oracleQuantile(sorted []int64, q float64) int64 {
	rank := int(q * float64(len(sorted)))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestHistQuantileOracle records random samples from several distributions
// and checks every quantile against the sorted-slice oracle within the
// designed relative error.
func TestHistQuantileOracle(t *testing.T) {
	distributions := map[string]func(r *rand.Rand) int64{
		"uniform": func(r *rand.Rand) int64 { return r.Int63n(int64(time.Second)) },
		"exp":     func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * float64(10*time.Millisecond)) },
		"bimodal": func(r *rand.Rand) int64 {
			if r.Intn(10) == 0 {
				return int64(time.Second) + r.Int63n(int64(time.Second))
			}
			return r.Int63n(int64(time.Millisecond))
		},
		"tiny": func(r *rand.Rand) int64 { return r.Int63n(50) },
	}
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for name, draw := range distributions {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(11))
			var h Hist
			samples := make([]int64, 20000)
			for i := range samples {
				v := draw(r)
				samples[i] = v
				h.Record(time.Duration(v))
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range quantiles {
				want := oracleQuantile(samples, q)
				got := int64(h.Quantile(q))
				// The histogram reports the bucket's upper bound, clamped to
				// the recorded extrema: got must be >= want (never
				// understate) and within the relative tolerance.
				if got < want {
					t.Errorf("q=%v: got %d < oracle %d (quantile understated)", q, got, want)
				}
				slack := int64(float64(want)*histRelTolerance) + 1
				if got > want+slack {
					t.Errorf("q=%v: got %d, oracle %d, beyond tolerance %d", q, got, want, slack)
				}
			}
			if h.Count() != uint64(len(samples)) {
				t.Errorf("count = %d, want %d", h.Count(), len(samples))
			}
			if int64(h.Min()) != samples[0] || int64(h.Max()) != samples[len(samples)-1] {
				t.Errorf("min/max = %v/%v, want %d/%d", h.Min(), h.Max(), samples[0], samples[len(samples)-1])
			}
		})
	}
}

// TestHistMerge checks that merging per-worker histograms equals recording
// everything into one: same counts, extrema and quantiles.
func TestHistMerge(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var whole Hist
	workers := make([]Hist, 8)
	for i := 0; i < 50000; i++ {
		v := time.Duration(r.Int63n(int64(10 * time.Second)))
		whole.Record(v)
		workers[i%len(workers)].Record(v)
	}
	var merged Hist
	for i := range workers {
		merged.Merge(&workers[i])
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("merged count = %d, want %d", merged.Count(), whole.Count())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged min/max = %v/%v, want %v/%v", merged.Min(), merged.Max(), whole.Min(), whole.Max())
	}
	if merged.Mean() != whole.Mean() {
		t.Fatalf("merged mean = %v, want %v", merged.Mean(), whole.Mean())
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q=%v: merged %v != whole %v", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
}

// TestHistZeroSamples pins the empty-histogram edge cases: everything
// reports zero, merging an empty histogram is a no-op, and merging INTO an
// empty histogram adopts the source's extrema.
func TestHistZeroSamples(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram not all-zero: count=%d q50=%v min=%v max=%v mean=%v",
			h.Count(), h.Quantile(0.5), h.Min(), h.Max(), h.Mean())
	}

	var full Hist
	full.Record(5 * time.Millisecond)
	full.Merge(&h) // empty source: no-op
	if full.Count() != 1 || full.Min() != 5*time.Millisecond {
		t.Fatalf("merging empty changed the target: count=%d min=%v", full.Count(), full.Min())
	}

	var empty Hist
	empty.Merge(&full) // empty target adopts the source, including min
	if empty.Count() != 1 || empty.Min() != 5*time.Millisecond || empty.Max() != 5*time.Millisecond {
		t.Fatalf("merging into empty: count=%d min=%v max=%v", empty.Count(), empty.Min(), empty.Max())
	}

	// A single zero-valued sample is still a sample.
	var z Hist
	z.Record(0)
	if z.Count() != 1 || z.Quantile(1) != 0 {
		t.Fatalf("zero-valued sample: count=%d q100=%v", z.Count(), z.Quantile(1))
	}
}

// TestHistBucketMonotone sweeps the bucket math: indexes are monotone in
// the value, and every value is <= the upper bound of its bucket.
func TestHistBucketMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<20 + 7, 1 << 40, 1<<62 + 12345} {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d: not monotone", v, b, prev)
		}
		prev = b
		if hi := bucketHigh(b); hi < v {
			t.Errorf("bucketHigh(%d) = %d < value %d", b, hi, v)
		}
	}
	if b := bucketOf(1<<63 - 1); b >= histBuckets {
		t.Fatalf("max value bucket %d out of range %d", b, histBuckets)
	}
}
