package loadgen

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	m, err := ParseMix("put=2,fetch=6,schedule=1,search=1")
	if err != nil {
		t.Fatal(err)
	}
	if m != (Mix{Put: 2, Fetch: 6, Schedule: 1, Search: 1}) {
		t.Fatalf("mix = %+v", m)
	}
	if m.String() != "put=2,fetch=6,schedule=1,search=1" {
		t.Fatalf("round trip = %q", m.String())
	}
	if m, err = ParseMix("fetch=1"); err != nil || m.total() != 1 {
		t.Fatalf("single-class mix: %+v, %v", m, err)
	}
	for _, bad := range []string{"", "put=0", "put", "put=-1", "delete=1"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q): want error", bad)
		}
	}
}

// TestMixPick checks the weighted draw lands near the asked proportions and
// never picks a zero-weight class.
func TestMixPick(t *testing.T) {
	m := Mix{Put: 1, Fetch: 3, Search: 1} // schedule disabled
	r := rand.New(rand.NewSource(5))
	var counts [NumOps]int
	const n = 50000
	for i := 0; i < n; i++ {
		counts[m.pick(r)]++
	}
	if counts[OpSchedule] != 0 {
		t.Fatalf("picked schedule %d times with weight 0", counts[OpSchedule])
	}
	if f := float64(counts[OpFetch]) / n; f < 0.55 || f > 0.65 {
		t.Errorf("fetch fraction = %.3f, want ~0.6", f)
	}
}

// countingOps is a fake client: constant-latency ops, scripted failures.
type countingOps struct {
	ops       *atomic.Uint64
	delay     time.Duration
	failEvery int
	n         int
	closed    *atomic.Int32
}

func (c *countingOps) Do(kind OpKind, r *rand.Rand) error {
	c.ops.Add(1)
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	c.n++
	if c.failEvery > 0 && c.n%c.failEvery == 0 {
		return errors.New("scripted failure")
	}
	return nil
}

func (c *countingOps) Close() error { c.closed.Add(1); return nil }

// TestRunClosedLoop drives the generator against fake clients and checks
// the accounting: ops counted, errors tallied, every client closed, and
// per-op stats only for classes in the mix.
func TestRunClosedLoop(t *testing.T) {
	var total atomic.Uint64
	var closed atomic.Int32
	cfg := Config{
		Clients:  4,
		Duration: 200 * time.Millisecond,
		Warmup:   50 * time.Millisecond,
		Mix:      Mix{Put: 1, Fetch: 1},
	}
	res, err := Run(cfg, func(i int) (Ops, error) {
		return &countingOps{ops: &total, delay: time.Millisecond, failEvery: 10, closed: &closed}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if closed.Load() != 4 {
		t.Errorf("closed %d clients, want 4", closed.Load())
	}
	if res.Ops == 0 {
		t.Fatal("no measured ops")
	}
	// Warmup ops executed but were not measured.
	if total.Load() <= res.Ops {
		t.Errorf("total executed %d should exceed measured %d (warmup excluded)", total.Load(), res.Ops)
	}
	if res.Errors == 0 || res.Errors >= res.Ops {
		t.Errorf("errors = %d of %d ops, want some but not all", res.Errors, res.Ops)
	}
	if res.Shed != 0 {
		t.Errorf("closed loop shed %d", res.Shed)
	}
	if len(res.PerOp) != 2 {
		t.Fatalf("per-op classes = %d, want 2 (put, fetch)", len(res.PerOp))
	}
	var sum uint64
	for kind, stats := range res.PerOp {
		if kind != OpPut && kind != OpFetch {
			t.Errorf("unexpected class %v", kind)
		}
		if stats.Hist.Count() != stats.Count {
			t.Errorf("%v: hist count %d != op count %d", kind, stats.Hist.Count(), stats.Count)
		}
		sum += stats.Count
	}
	if sum != res.Ops || res.All.Count() != res.Ops {
		t.Errorf("per-op sum %d / all-hist %d, want %d", sum, res.All.Count(), res.Ops)
	}
	if res.Throughput() <= 0 {
		t.Errorf("throughput = %v", res.Throughput())
	}
	if p50, p99 := res.All.Quantile(0.5), res.All.Quantile(0.99); p50 > p99 {
		t.Errorf("quantiles out of order: p50 %v > p99 %v", p50, p99)
	}
}

// TestRunOpenLoop checks open-loop pacing: with fast clients the measured
// throughput tracks the asked rate, not the clients' maximum speed.
func TestRunOpenLoop(t *testing.T) {
	var total atomic.Uint64
	var closed atomic.Int32
	cfg := Config{
		Clients:  4,
		Duration: 400 * time.Millisecond,
		Mix:      Mix{Fetch: 1},
		OpenLoop: true,
		Rate:     500,
	}
	res, err := Run(cfg, func(i int) (Ops, error) {
		return &countingOps{ops: &total, closed: &closed}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fast clients under closed loop would run orders of magnitude beyond
	// 500 ops/sec; open loop must stay near it (generous CI bounds).
	if tp := res.Throughput(); tp < 200 || tp > 800 {
		t.Errorf("open-loop throughput = %.0f ops/sec, want ~500", tp)
	}
}

// TestRunOpenLoopNeedsRate pins the config validation.
func TestRunOpenLoopNeedsRate(t *testing.T) {
	_, err := Run(Config{OpenLoop: true, Duration: time.Millisecond}, func(i int) (Ops, error) {
		t.Fatal("factory called despite invalid config")
		return nil, nil
	})
	if err == nil {
		t.Fatal("want error for open loop without rate")
	}
}

// TestRunSetupFailure checks a failing factory aborts the run and closes
// the clients already built.
func TestRunSetupFailure(t *testing.T) {
	var closed atomic.Int32
	var total atomic.Uint64
	_, err := Run(Config{Clients: 3, Duration: time.Millisecond}, func(i int) (Ops, error) {
		if i == 2 {
			return nil, errors.New("boom")
		}
		return &countingOps{ops: &total, closed: &closed}, nil
	})
	if err == nil {
		t.Fatal("want setup error")
	}
	if closed.Load() != 2 {
		t.Errorf("closed %d clients on abort, want 2", closed.Load())
	}
}
