package loadgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// OpKind is one operation class of the mixed workload.
type OpKind int

// The four operation classes of the paper's service-plane traffic: writing
// a datum into the space, fetching one back, submitting a schedule order,
// and searching the catalog.
const (
	OpPut OpKind = iota
	OpFetch
	OpSchedule
	OpSearch
	NumOps
)

// String names the op class as it appears in mixes and reports.
func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpFetch:
		return "fetch"
	case OpSchedule:
		return "schedule"
	case OpSearch:
		return "search"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Mix is the relative weight of each op class. A zero weight disables the
// class; an all-zero mix is invalid.
type Mix struct {
	Put, Fetch, Schedule, Search int
}

// DefaultMix is a read-heavy data-space profile: mostly fetches, a steady
// trickle of puts, schedule orders and searches.
func DefaultMix() Mix { return Mix{Put: 2, Fetch: 6, Schedule: 1, Search: 1} }

// ParseMix parses "put=2,fetch=6,schedule=1,search=1" (missing classes get
// weight 0).
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("loadgen: mix term %q: want name=weight", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return m, fmt.Errorf("loadgen: mix weight %q: want a non-negative integer", val)
		}
		switch strings.TrimSpace(name) {
		case "put":
			m.Put = w
		case "fetch":
			m.Fetch = w
		case "schedule":
			m.Schedule = w
		case "search":
			m.Search = w
		default:
			return m, fmt.Errorf("loadgen: unknown op %q (want put/fetch/schedule/search)", name)
		}
	}
	if m.total() == 0 {
		return m, fmt.Errorf("loadgen: mix %q has no positive weight", s)
	}
	return m, nil
}

// String renders the mix in ParseMix's syntax.
func (m Mix) String() string {
	return fmt.Sprintf("put=%d,fetch=%d,schedule=%d,search=%d", m.Put, m.Fetch, m.Schedule, m.Search)
}

func (m Mix) total() int { return m.Put + m.Fetch + m.Schedule + m.Search }

// pick draws an op class with probability proportional to its weight.
func (m Mix) pick(r *rand.Rand) OpKind {
	n := r.Intn(m.total())
	if n < m.Put {
		return OpPut
	}
	n -= m.Put
	if n < m.Fetch {
		return OpFetch
	}
	n -= m.Fetch
	if n < m.Schedule {
		return OpSchedule
	}
	return OpSearch
}

// Ops executes the workload's operations against the system under test.
// Each simulated client gets its own Ops instance (see Factory), so
// implementations need not be safe for concurrent use.
type Ops interface {
	// Do runs one operation of the given class, using r for any random
	// choices (target datum, payload content) so runs are reproducible per
	// seed. The returned error counts against the run's error budget.
	Do(kind OpKind, r *rand.Rand) error
	// Close releases the client's resources after the run.
	Close() error
}

// Factory builds the Ops of one simulated client. It is called once per
// client, before the clock starts.
type Factory func(client int) (Ops, error)

// Config parameterises a load run.
type Config struct {
	// Clients is the number of concurrent simulated clients (default 16).
	Clients int
	// Duration is the measured window (default 5s).
	Duration time.Duration
	// Warmup runs the workload without recording before the measured
	// window, letting caches fill and connections settle (default 0).
	Warmup time.Duration
	// Mix weights the op classes (default DefaultMix).
	Mix Mix
	// OpenLoop switches from closed-loop arrival (each client issues its
	// next op as soon as the previous returns — throughput finds its own
	// level) to open-loop arrival: operations arrive on a fixed schedule of
	// Rate ops/sec regardless of completions, and latency is measured from
	// each op's SCHEDULED arrival, so queueing delay under overload is
	// charged to the system rather than silently omitted.
	OpenLoop bool
	// Rate is the open-loop arrival rate in ops/sec across all clients
	// (required when OpenLoop).
	Rate float64
	// Seed makes op sequences reproducible (default 1).
	Seed int64
}

func (c *Config) defaults() error {
	if c.Clients <= 0 {
		c.Clients = 16
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Mix.total() == 0 {
		c.Mix = DefaultMix()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.OpenLoop && c.Rate <= 0 {
		return fmt.Errorf("loadgen: open-loop arrival needs a positive -rate")
	}
	return nil
}

// OpStats is the measured outcome of one op class.
type OpStats struct {
	Count  uint64
	Errors uint64
	Hist   *Hist
}

// Result is the measured outcome of a run.
type Result struct {
	Config  Config
	Elapsed time.Duration
	// Ops and Errors count the MEASURED window only (warmup excluded).
	Ops    uint64
	Errors uint64
	// Shed counts open-loop arrivals dropped because every client was busy
	// and the arrival queue was full — the generator fell behind the asked
	// rate. Always 0 closed-loop.
	Shed uint64
	// PerOp holds one entry per op class with a nonzero mix weight.
	PerOp map[OpKind]*OpStats
	// All merges every class's histogram.
	All *Hist
	// ErrorSamples holds up to a handful of distinct error messages seen
	// during the measured window, so a nonzero Errors count is diagnosable
	// from the report alone.
	ErrorSamples []string
}

// Throughput returns measured ops/sec.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// clientState is one worker's private accounting, merged after the run.
type clientState struct {
	hists      [NumOps]Hist
	counts     [NumOps]uint64
	errors     [NumOps]uint64
	errSamples []string
}

// maxErrSamples caps the error messages each worker (and the merged result)
// retains.
const maxErrSamples = 4

// Run executes the configured workload: build one Ops per client, run the
// warmup, then drive the mixed load for the measured window and merge the
// per-client histograms. The error reports setup failures only; operation
// errors are counted in the result (callers decide whether any are
// tolerable).
func Run(cfg Config, factory Factory) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	clients := make([]Ops, cfg.Clients)
	for i := range clients {
		ops, err := factory(i)
		if err != nil {
			for _, c := range clients[:i] {
				c.Close()
			}
			return nil, fmt.Errorf("loadgen: client %d: %w", i, err)
		}
		clients[i] = ops
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	// measuring flips when the warmup ends; stop closes when the measured
	// window ends. Workers check both on every op.
	var measuring atomic.Bool
	stop := make(chan struct{})
	states := make([]clientState, cfg.Clients)
	var shed atomic.Uint64

	var arrivals chan time.Time
	if cfg.OpenLoop {
		// The arrival queue lets ~1s of backlog accumulate before arrivals
		// are shed (and counted): an overloaded system sees its queueing
		// delay in the latencies, but the generator itself never blocks.
		depth := int(cfg.Rate)
		if depth < cfg.Clients {
			depth = cfg.Clients
		}
		arrivals = make(chan time.Time, depth)
	}

	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func(i int, ops Ops) {
			defer wg.Done()
			st := &states[i]
			r := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
			for {
				var started time.Time
				if cfg.OpenLoop {
					select {
					case <-stop:
						return
					case started = <-arrivals:
					}
				} else {
					select {
					case <-stop:
						return
					default:
					}
					started = time.Now()
				}
				kind := cfg.Mix.pick(r)
				err := ops.Do(kind, r)
				if !measuring.Load() {
					continue
				}
				st.counts[kind]++
				if err != nil {
					st.errors[kind]++
					if len(st.errSamples) < maxErrSamples {
						st.errSamples = append(st.errSamples, fmt.Sprintf("%s: %v", kind, err))
					}
				}
				// Open-loop latency spans from the scheduled arrival, so
				// time spent queueing behind busy clients is charged.
				st.hists[kind].Record(time.Since(started))
			}
		}(i, clients[i])
	}

	if cfg.OpenLoop {
		wg.Add(1)
		go func() {
			defer wg.Done()
			interval := time.Duration(float64(time.Second) / cfg.Rate)
			if interval <= 0 {
				interval = time.Nanosecond
			}
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case now := <-tick.C:
					select {
					case arrivals <- now:
					default:
						if measuring.Load() {
							shed.Add(1)
						}
					}
				}
			}
		}()
	}

	if cfg.Warmup > 0 {
		time.Sleep(cfg.Warmup)
	}
	measuring.Store(true)
	start := time.Now()
	time.Sleep(cfg.Duration)
	measuring.Store(false)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	res := &Result{
		Config:  cfg,
		Elapsed: elapsed,
		Shed:    shed.Load(),
		PerOp:   make(map[OpKind]*OpStats),
		All:     &Hist{},
	}
	weights := []int{cfg.Mix.Put, cfg.Mix.Fetch, cfg.Mix.Schedule, cfg.Mix.Search}
	for kind := OpKind(0); kind < NumOps; kind++ {
		if weights[kind] == 0 {
			continue
		}
		stats := &OpStats{Hist: &Hist{}}
		for i := range states {
			stats.Count += states[i].counts[kind]
			stats.Errors += states[i].errors[kind]
			stats.Hist.Merge(&states[i].hists[kind])
		}
		res.PerOp[kind] = stats
		res.Ops += stats.Count
		res.Errors += stats.Errors
		res.All.Merge(stats.Hist)
	}
	seen := make(map[string]bool)
	for i := range states {
		for _, s := range states[i].errSamples {
			if len(res.ErrorSamples) >= maxErrSamples {
				break
			}
			if !seen[s] {
				seen[s] = true
				res.ErrorSamples = append(res.ErrorSamples, s)
			}
		}
	}
	return res, nil
}

// Kinds lists the op classes present in the result, in canonical order.
func (r *Result) Kinds() []OpKind {
	kinds := make([]OpKind, 0, len(r.PerOp))
	for k := range r.PerOp {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}
