// Package dht implements a Chord-style distributed hash table standing in
// for the DKS DHT used by BitDew's Distributed Data Catalog (paper §3.4.1,
// Table 3). The DDC stores, for each datum held by volatile reservoir
// nodes, the set of (dataID, hostID) pairs; the DHT gives that catalog the
// two properties the paper's design rationale demands: inherent fault
// tolerance (replicated entries survive node failures without the central
// Data Catalog implementing failure detection) and even load balancing of
// search requests.
//
// Nodes live in one process and communicate by direct calls routed through
// the Ring, which counts hops and can inject a per-hop latency so that
// benchmarks reproduce wide-area routing costs. Routing is the standard
// Chord protocol: consistent hashing on a 64-bit identifier circle, finger
// tables for O(log n) lookups, successor lists for resilience, and periodic
// stabilization to repair the ring after joins and failures.
package dht

import (
	"crypto/md5"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// ID is a position on the 64-bit identifier circle.
type ID uint64

// HashID maps a string key or node name onto the identifier circle.
func HashID(s string) ID {
	sum := md5.Sum([]byte(s))
	return ID(binary.BigEndian.Uint64(sum[:8]))
}

// between reports whether x lies in the circular interval (a, b].
func between(x, a, b ID) bool {
	if a < b {
		return x > a && x <= b
	}
	if a > b {
		return x > a || x <= b
	}
	return true // a == b: full circle
}

// betweenOpen reports whether x lies in the circular interval (a, b).
func betweenOpen(x, a, b ID) bool {
	if a < b {
		return x > a && x < b
	}
	if a > b {
		return x > a || x < b
	}
	return x != a
}

const (
	fingerBits    = 64
	successorFan  = 4 // successor-list length
	defaultRepFac = 3 // entry replication factor
)

// ErrNodeDown is returned when routing reaches a failed node.
var ErrNodeDown = errors.New("dht: node down")

// ErrEmptyRing is returned by operations on a ring with no live node.
var ErrEmptyRing = errors.New("dht: empty ring")

// nodeRef is a lightweight pointer to a node (its identity only); the Ring
// resolves refs to live nodes at call time, so a ref to a crashed node
// surfaces ErrNodeDown exactly like a timed-out RPC would.
type nodeRef struct {
	id   ID
	name string
}

// Node is one DHT participant.
type Node struct {
	ring *Ring
	id   ID
	name string

	mu          sync.RWMutex
	predecessor *nodeRef
	successors  []nodeRef // at least 1, up to successorFan
	fingers     [fingerBits]*nodeRef
	store       map[string]map[string]struct{} // key -> value set
	alive       bool
	nextFinger  int
}

// ID returns the node's position on the circle.
func (n *Node) ID() ID { return n.id }

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// Ring is the collection of nodes plus the in-process "network" connecting
// them. All exported methods are safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	nodes    map[string]*Node
	repFac   int
	hopDelay time.Duration

	statMu sync.Mutex
	hops   uint64
	calls  uint64

	rng   *rand.Rand
	rngMu sync.Mutex
}

// Option configures a Ring.
type Option func(*Ring)

// WithHopDelay sleeps d on every inter-node hop, modelling network latency
// so that measurements over the in-process ring keep wide-area shape.
func WithHopDelay(d time.Duration) Option {
	return func(r *Ring) { r.hopDelay = d }
}

// WithReplication sets the entry replication factor (default 3).
func WithReplication(k int) Option {
	return func(r *Ring) {
		if k >= 1 {
			r.repFac = k
		}
	}
}

// WithSeed fixes the random source used to pick entry nodes, making test
// runs reproducible.
func WithSeed(seed int64) Option {
	return func(r *Ring) { r.rng = rand.New(rand.NewSource(seed)) }
}

// NewRing returns an empty ring.
func NewRing(opts ...Option) *Ring {
	r := &Ring{
		nodes:  make(map[string]*Node),
		repFac: defaultRepFac,
		rng:    rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// resolve returns the live node behind ref, charging one hop.
func (r *Ring) resolve(ref nodeRef) (*Node, error) {
	if r.hopDelay > 0 {
		time.Sleep(r.hopDelay)
	}
	r.statMu.Lock()
	r.hops++
	r.calls++
	r.statMu.Unlock()
	r.mu.RLock()
	n := r.nodes[ref.name]
	r.mu.RUnlock()
	if n == nil {
		return nil, fmt.Errorf("%w: %s", ErrNodeDown, ref.name)
	}
	n.mu.RLock()
	alive := n.alive
	n.mu.RUnlock()
	if !alive {
		return nil, fmt.Errorf("%w: %s", ErrNodeDown, ref.name)
	}
	return n, nil
}

// Stats returns the cumulative number of inter-node hops and calls.
func (r *Ring) Stats() (hops, calls uint64) {
	r.statMu.Lock()
	defer r.statMu.Unlock()
	return r.hops, r.calls
}

// ResetStats zeroes the hop counters.
func (r *Ring) ResetStats() {
	r.statMu.Lock()
	r.hops, r.calls = 0, 0
	r.statMu.Unlock()
}

// Size returns the number of live nodes.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	live := 0
	for _, n := range r.nodes {
		n.mu.RLock()
		if n.alive {
			live++
		}
		n.mu.RUnlock()
	}
	return live
}

// Nodes returns the names of live nodes in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var names []string
	for _, n := range r.nodes {
		n.mu.RLock()
		if n.alive {
			names = append(names, n.name)
		}
		n.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

// anyNode picks a random live node as the entry point of a routed operation.
func (r *Ring) anyNode() (*Node, error) {
	r.mu.RLock()
	live := make([]*Node, 0, len(r.nodes))
	for _, n := range r.nodes {
		n.mu.RLock()
		if n.alive {
			live = append(live, n)
		}
		n.mu.RUnlock()
	}
	r.mu.RUnlock()
	if len(live) == 0 {
		return nil, ErrEmptyRing
	}
	r.rngMu.Lock()
	n := live[r.rng.Intn(len(live))]
	r.rngMu.Unlock()
	return n, nil
}

// AddNode creates a node named name and joins it to the ring, transferring
// any keys that now fall under its responsibility.
func (r *Ring) AddNode(name string) (*Node, error) {
	r.mu.Lock()
	if existing, dup := r.nodes[name]; dup {
		existing.mu.RLock()
		alive := existing.alive
		existing.mu.RUnlock()
		if alive {
			r.mu.Unlock()
			return nil, fmt.Errorf("dht: node %s already in ring", name)
		}
	}
	n := &Node{
		ring:  r,
		id:    HashID(name),
		name:  name,
		store: make(map[string]map[string]struct{}),
		alive: true,
	}
	var bootstrap *Node
	for _, other := range r.nodes {
		other.mu.RLock()
		alive := other.alive
		other.mu.RUnlock()
		if alive && other.name != name {
			bootstrap = other
			break
		}
	}
	r.nodes[name] = n
	r.mu.Unlock()

	if bootstrap == nil {
		// First node: a ring of one, its own successor.
		n.mu.Lock()
		n.successors = []nodeRef{n.ref()}
		n.predecessor = nil
		n.mu.Unlock()
		return n, nil
	}
	succ, err := bootstrap.findSuccessor(n.id)
	if err != nil {
		return nil, fmt.Errorf("dht: join %s: %w", name, err)
	}
	n.mu.Lock()
	n.successors = []nodeRef{succ}
	n.mu.Unlock()
	// Take over keys in (predecessor(succ), n].
	if sn, err := r.resolve(succ); err == nil {
		moved := sn.handOff(n.id)
		n.mu.Lock()
		for k, vals := range moved {
			set := n.store[k]
			if set == nil {
				set = make(map[string]struct{})
				n.store[k] = set
			}
			for v := range vals {
				set[v] = struct{}{}
			}
		}
		n.mu.Unlock()
	}
	n.stabilize()
	return n, nil
}

// ref returns the node's own reference.
func (n *Node) ref() nodeRef { return nodeRef{id: n.id, name: n.name} }

// Fail marks a node crashed: it stops answering, and its stored entries are
// lost, exactly like a volatile reservoir host disappearing.
func (r *Ring) Fail(name string) error {
	r.mu.RLock()
	n := r.nodes[name]
	r.mu.RUnlock()
	if n == nil {
		return fmt.Errorf("dht: unknown node %s", name)
	}
	n.mu.Lock()
	n.alive = false
	n.store = make(map[string]map[string]struct{})
	n.mu.Unlock()
	return nil
}

// Stabilize runs one stabilization round (stabilize + fix one finger) on
// every live node; tests and simulations call it repeatedly instead of
// running background tickers, keeping runs deterministic.
func (r *Ring) Stabilize() {
	r.mu.RLock()
	nodes := make([]*Node, 0, len(r.nodes))
	for _, n := range r.nodes {
		nodes = append(nodes, n)
	}
	r.mu.RUnlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].id < nodes[j].id })
	for _, n := range nodes {
		n.mu.RLock()
		alive := n.alive
		n.mu.RUnlock()
		if alive {
			n.stabilize()
			n.fixFingers()
		}
	}
}

// StabilizeFully runs stabilization rounds until the ring reaches a fixed
// point (or the round budget is exhausted), then rebuilds finger tables.
func (r *Ring) StabilizeFully() {
	rounds := 2*len(r.nodes) + 8
	for i := 0; i < rounds; i++ {
		r.Stabilize()
	}
	r.mu.RLock()
	nodes := make([]*Node, 0, len(r.nodes))
	for _, n := range r.nodes {
		nodes = append(nodes, n)
	}
	r.mu.RUnlock()
	for _, n := range nodes {
		n.mu.RLock()
		alive := n.alive
		n.mu.RUnlock()
		if alive {
			for i := 0; i < fingerBits; i++ {
				n.fixFingers()
			}
		}
	}
}
