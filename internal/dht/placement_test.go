package dht

import (
	"fmt"
	"testing"
)

func TestPlacementSingleShard(t *testing.T) {
	p := NewPlacement(1)
	for i := 0; i < 100; i++ {
		if got := p.ShardOf(fmt.Sprintf("key-%d", i)); got != 0 {
			t.Fatalf("single-shard placement sent key-%d to shard %d", i, got)
		}
	}
}

func TestPlacementDeterministic(t *testing.T) {
	a, b := NewPlacement(4), NewPlacement(4)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("uid-%d", i)
		if a.ShardOf(k) != b.ShardOf(k) {
			t.Fatalf("two placements over 4 shards disagree on %s", k)
		}
	}
}

// TestPlacementBalance checks the vnode count keeps every shard's key share
// within a reasonable band of fair (25% each over 4 shards).
func TestPlacementBalance(t *testing.T) {
	p := NewPlacement(4)
	counts := make([]int, 4)
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[p.ShardOf(fmt.Sprintf("data-%d", i))]++
	}
	for shard, c := range counts {
		share := float64(c) / keys
		if share < 0.12 || share > 0.40 {
			t.Fatalf("shard %d holds %.1f%% of keys (counts %v)", shard, 100*share, counts)
		}
	}
}

// TestPlacementMonotone pins the consistent-hashing property: growing the
// plane from n to n+1 shards moves keys only onto the new shard — no key
// migrates between pre-existing shards.
func TestPlacementMonotone(t *testing.T) {
	p4, p5 := NewPlacement(4), NewPlacement(5)
	moved := 0
	const keys = 5000
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("uid-%d", i)
		before, after := p4.ShardOf(k), p5.ShardOf(k)
		if before == after {
			continue
		}
		if after != 4 {
			t.Fatalf("key %s moved from shard %d to pre-existing shard %d", k, before, after)
		}
		moved++
	}
	// The new shard should claim roughly 1/5 of the keys, and must claim some.
	if moved == 0 || moved > keys/2 {
		t.Fatalf("adding a 5th shard moved %d of %d keys", moved, keys)
	}
}
