package dht

import (
	"fmt"
	"testing"
)

func TestPlacementSingleShard(t *testing.T) {
	p := NewPlacement(1)
	for i := 0; i < 100; i++ {
		if got := p.ShardOf(fmt.Sprintf("key-%d", i)); got != 0 {
			t.Fatalf("single-shard placement sent key-%d to shard %d", i, got)
		}
	}
}

func TestPlacementDeterministic(t *testing.T) {
	a, b := NewPlacement(4), NewPlacement(4)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("uid-%d", i)
		if a.ShardOf(k) != b.ShardOf(k) {
			t.Fatalf("two placements over 4 shards disagree on %s", k)
		}
	}
}

// TestPlacementBalance checks the vnode count keeps every shard's key share
// within a reasonable band of fair (25% each over 4 shards).
func TestPlacementBalance(t *testing.T) {
	p := NewPlacement(4)
	counts := make([]int, 4)
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[p.ShardOf(fmt.Sprintf("data-%d", i))]++
	}
	for shard, c := range counts {
		share := float64(c) / keys
		if share < 0.12 || share > 0.40 {
			t.Fatalf("shard %d holds %.1f%% of keys (counts %v)", shard, 100*share, counts)
		}
	}
}

// TestPlacementMonotone pins the consistent-hashing property: growing the
// plane from n to n+1 shards moves keys only onto the new shard — no key
// migrates between pre-existing shards.
func TestPlacementMonotone(t *testing.T) {
	p4, p5 := NewPlacement(4), NewPlacement(5)
	moved := 0
	const keys = 5000
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("uid-%d", i)
		before, after := p4.ShardOf(k), p5.ShardOf(k)
		if before == after {
			continue
		}
		if after != 4 {
			t.Fatalf("key %s moved from shard %d to pre-existing shard %d", k, before, after)
		}
		moved++
	}
	// The new shard should claim roughly 1/5 of the keys, and must claim some.
	if moved == 0 || moved > keys/2 {
		t.Fatalf("adding a 5th shard moved %d of %d keys", moved, keys)
	}
}

// TestPlacementSuccessors pins the replica-set walk: home shard first, all
// members distinct, length min(r, n), deterministic across placements, and r
// clamped on both ends.
func TestPlacementSuccessors(t *testing.T) {
	p := NewPlacement(5)
	for shard := 0; shard < 5; shard++ {
		for r := 1; r <= 7; r++ {
			succ := p.Successors(shard, r)
			want := r
			if want > 5 {
				want = 5
			}
			if len(succ) != want {
				t.Fatalf("Successors(%d, %d) = %v, want length %d", shard, r, succ, want)
			}
			if succ[0] != shard {
				t.Fatalf("Successors(%d, %d) = %v, home shard not first", shard, r, succ)
			}
			seen := map[int]bool{}
			for _, s := range succ {
				if s < 0 || s >= 5 || seen[s] {
					t.Fatalf("Successors(%d, %d) = %v: invalid or duplicate member %d", shard, r, succ, s)
				}
				seen[s] = true
			}
		}
		// r < 1 clamps to the home shard alone.
		if got := p.Successors(shard, 0); len(got) != 1 || got[0] != shard {
			t.Fatalf("Successors(%d, 0) = %v, want [%d]", shard, got, shard)
		}
	}

	// Deterministic: two independently built placements agree, and longer
	// walks extend shorter ones (prefix property — a client asking for r=2
	// and a shard asking for r=3 agree on the first successor).
	q := NewPlacement(5)
	for shard := 0; shard < 5; shard++ {
		s2, s3 := p.Successors(shard, 2), q.Successors(shard, 3)
		for i := range s2 {
			if s2[i] != s3[i] {
				t.Fatalf("shard %d: Successors prefix mismatch: r=2 %v vs r=3 %v", shard, s2, s3)
			}
		}
	}

	// Single-shard plane: the only replica is the shard itself.
	one := NewPlacement(1)
	if got := one.Successors(0, 3); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Successors on 1-shard plane = %v", got)
	}
}
