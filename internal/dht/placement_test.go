package dht

import (
	"fmt"
	"testing"
)

func TestPlacementSingleShard(t *testing.T) {
	p := NewPlacement(1)
	for i := 0; i < 100; i++ {
		if got := p.ShardOf(fmt.Sprintf("key-%d", i)); got != 0 {
			t.Fatalf("single-shard placement sent key-%d to shard %d", i, got)
		}
	}
}

func TestPlacementDeterministic(t *testing.T) {
	a, b := NewPlacement(4), NewPlacement(4)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("uid-%d", i)
		if a.ShardOf(k) != b.ShardOf(k) {
			t.Fatalf("two placements over 4 shards disagree on %s", k)
		}
	}
}

// TestPlacementBalance checks the vnode count keeps every shard's key share
// within a reasonable band of fair (25% each over 4 shards).
func TestPlacementBalance(t *testing.T) {
	p := NewPlacement(4)
	counts := make([]int, 4)
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[p.ShardOf(fmt.Sprintf("data-%d", i))]++
	}
	for shard, c := range counts {
		share := float64(c) / keys
		if share < 0.12 || share > 0.40 {
			t.Fatalf("shard %d holds %.1f%% of keys (counts %v)", shard, 100*share, counts)
		}
	}
}

// TestPlacementMonotone pins the consistent-hashing property: growing the
// plane from n to n+1 shards moves keys only onto the new shard — no key
// migrates between pre-existing shards.
func TestPlacementMonotone(t *testing.T) {
	p4, p5 := NewPlacement(4), NewPlacement(5)
	moved := 0
	const keys = 5000
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("uid-%d", i)
		before, after := p4.ShardOf(k), p5.ShardOf(k)
		if before == after {
			continue
		}
		if after != 4 {
			t.Fatalf("key %s moved from shard %d to pre-existing shard %d", k, before, after)
		}
		moved++
	}
	// The new shard should claim roughly 1/5 of the keys, and must claim some.
	if moved == 0 || moved > keys/2 {
		t.Fatalf("adding a 5th shard moved %d of %d keys", moved, keys)
	}
}

// TestPlacementSuccessors pins the replica-set walk: home shard first, all
// members distinct, length min(r, n), deterministic across placements, and r
// clamped on both ends.
func TestPlacementSuccessors(t *testing.T) {
	p := NewPlacement(5)
	for shard := 0; shard < 5; shard++ {
		for r := 1; r <= 7; r++ {
			succ := p.Successors(shard, r)
			want := r
			if want > 5 {
				want = 5
			}
			if len(succ) != want {
				t.Fatalf("Successors(%d, %d) = %v, want length %d", shard, r, succ, want)
			}
			if succ[0] != shard {
				t.Fatalf("Successors(%d, %d) = %v, home shard not first", shard, r, succ)
			}
			seen := map[int]bool{}
			for _, s := range succ {
				if s < 0 || s >= 5 || seen[s] {
					t.Fatalf("Successors(%d, %d) = %v: invalid or duplicate member %d", shard, r, succ, s)
				}
				seen[s] = true
			}
		}
		// r < 1 clamps to the home shard alone.
		if got := p.Successors(shard, 0); len(got) != 1 || got[0] != shard {
			t.Fatalf("Successors(%d, 0) = %v, want [%d]", shard, got, shard)
		}
	}

	// Deterministic: two independently built placements agree, and longer
	// walks extend shorter ones (prefix property — a client asking for r=2
	// and a shard asking for r=3 agree on the first successor).
	q := NewPlacement(5)
	for shard := 0; shard < 5; shard++ {
		s2, s3 := p.Successors(shard, 2), q.Successors(shard, 3)
		for i := range s2 {
			if s2[i] != s3[i] {
				t.Fatalf("shard %d: Successors prefix mismatch: r=2 %v vs r=3 %v", shard, s2, s3)
			}
		}
	}

	// Single-shard plane: the only replica is the shard itself.
	one := NewPlacement(1)
	if got := one.Successors(0, 3); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Successors on 1-shard plane = %v", got)
	}
}

// TestSuccessorsCrossCheck pins the precomputed Successors tables against
// the original circle walk, byte-identical over every (n, shard, r)
// combination in the deployment band.
func TestSuccessorsCrossCheck(t *testing.T) {
	for n := 1; n <= 16; n++ {
		p := NewPlacement(n)
		for shard := 0; shard < n; shard++ {
			for r := 1; r <= n; r++ {
				got := p.Successors(shard, r)
				want := p.successorsWalk(shard, r)
				if len(got) != len(want) {
					t.Fatalf("n=%d Successors(%d,%d) = %v, walk = %v", n, shard, r, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("n=%d Successors(%d,%d) = %v, walk = %v", n, shard, r, got, want)
					}
				}
			}
		}
	}
}

// TestSuccessorsMonotone extends TestPlacementMonotone to the replica walk:
// growing n → n+1 must not gratuitously churn replica sets. Removing the
// new shard from any post-growth walk yields exactly the pre-growth walk —
// so a range untouched by the growth keeps its old replica set except where
// the new shard itself displaced a member.
func TestSuccessorsMonotone(t *testing.T) {
	for n := 2; n <= 12; n++ {
		old, next := NewPlacement(n), NewPlacement(n+1)
		for shard := 0; shard < n; shard++ {
			after := next.Successors(shard, n+1)
			filtered := make([]int, 0, n)
			for _, s := range after {
				if s != n {
					filtered = append(filtered, s)
				}
			}
			before := old.Successors(shard, n)
			if len(filtered) != len(before) {
				t.Fatalf("n=%d shard %d: filtered walk %v vs old walk %v", n, shard, filtered, before)
			}
			for i := range before {
				if filtered[i] != before[i] {
					t.Fatalf("n=%d shard %d: growth churned the walk: new %v (filtered %v) vs old %v",
						n, shard, after, filtered, before)
				}
			}
		}
	}
}

// TestDiffMatchesShardOf pins Diff's contract: a key lies in some returned
// Move's range if and only if its home shard changes, and the Move's
// From/To match ShardOf on both sides.
func TestDiffMatchesShardOf(t *testing.T) {
	cases := [][2]int{{2, 3}, {3, 2}, {2, 4}, {4, 5}, {1, 2}, {5, 5}}
	for _, c := range cases {
		old, next := NewPlacement(c[0]), NewPlacement(c[1])
		moves := Diff(old, next)
		if c[0] == c[1] && len(moves) != 0 {
			t.Fatalf("Diff(%d,%d) returned %d moves for identical placements", c[0], c[1], len(moves))
		}
		const keys = 8000
		for i := 0; i < keys; i++ {
			k := fmt.Sprintf("uid-%d", i)
			from, to := old.ShardOf(k), next.ShardOf(k)
			var hit *Move
			for j := range moves {
				if moves[j].Range.ContainsKey(k) {
					if hit != nil {
						t.Fatalf("Diff(%d,%d): key %s in two ranges", c[0], c[1], k)
					}
					hit = &moves[j]
				}
			}
			if from == to {
				if hit != nil {
					t.Fatalf("Diff(%d,%d): unmoved key %s inside move %+v", c[0], c[1], k, *hit)
				}
				continue
			}
			if hit == nil {
				t.Fatalf("Diff(%d,%d): moved key %s (%d→%d) in no range", c[0], c[1], k, from, to)
			}
			if hit.From != from || hit.To != to {
				t.Fatalf("Diff(%d,%d): key %s moved %d→%d but range says %d→%d",
					c[0], c[1], k, from, to, hit.From, hit.To)
			}
		}
	}
}
