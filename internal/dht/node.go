package dht

import (
	"fmt"
	"sort"
)

// findSuccessor routes from n to the live node responsible for id.
// Routing is iterative: at each step the current node either answers with
// its successor or forwards to the closest preceding live finger.
func (n *Node) findSuccessor(id ID) (nodeRef, error) {
	cur := n
	for hop := 0; hop < 4*fingerBits; hop++ {
		succ, err := cur.liveSuccessor()
		if err != nil {
			return nodeRef{}, err
		}
		if between(id, cur.id, succ.id) {
			return succ, nil
		}
		nextRef := cur.closestPreceding(id)
		if nextRef.name == cur.name {
			// Fingers degenerate (small or freshly repaired ring): walk the
			// successor pointer instead of looping forever.
			next, err := cur.ring.resolve(succ)
			if err != nil {
				return nodeRef{}, err
			}
			cur = next
			continue
		}
		next, err := cur.ring.resolve(nextRef)
		if err != nil {
			// Stale finger to a dead node: drop it and retry from here.
			cur.dropRef(nextRef)
			continue
		}
		cur = next
	}
	return nodeRef{}, fmt.Errorf("dht: lookup for %d did not converge", id)
}

// liveSuccessor returns the first live entry of the successor list,
// repairing the list as dead successors are discovered.
func (n *Node) liveSuccessor() (nodeRef, error) {
	n.mu.RLock()
	succs := append([]nodeRef(nil), n.successors...)
	n.mu.RUnlock()
	for _, s := range succs {
		if s.name == n.name {
			return s, nil
		}
		if _, err := n.ring.resolve(s); err == nil {
			return s, nil
		}
		n.dropRef(s)
	}
	// All successors dead: point at self so the ring can re-form around us.
	self := n.ref()
	n.mu.Lock()
	n.successors = []nodeRef{self}
	n.mu.Unlock()
	return self, nil
}

// closestPreceding returns the closest known node preceding id, consulting
// fingers and the successor list.
func (n *Node) closestPreceding(id ID) nodeRef {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for i := fingerBits - 1; i >= 0; i-- {
		f := n.fingers[i]
		if f != nil && betweenOpen(f.id, n.id, id) {
			return *f
		}
	}
	for i := len(n.successors) - 1; i >= 0; i-- {
		s := n.successors[i]
		if betweenOpen(s.id, n.id, id) {
			return s
		}
	}
	return n.ref()
}

// dropRef removes every occurrence of a (dead) reference from the node's
// routing state.
func (n *Node) dropRef(dead nodeRef) {
	n.mu.Lock()
	defer n.mu.Unlock()
	kept := n.successors[:0]
	for _, s := range n.successors {
		if s.name != dead.name {
			kept = append(kept, s)
		}
	}
	n.successors = kept
	if len(n.successors) == 0 {
		n.successors = []nodeRef{n.ref()}
	}
	for i, f := range n.fingers {
		if f != nil && f.name == dead.name {
			n.fingers[i] = nil
		}
	}
	if n.predecessor != nil && n.predecessor.name == dead.name {
		n.predecessor = nil
	}
}

// stabilize runs one Chord stabilization step: verify the immediate
// successor, adopt a closer one if the successor's predecessor lies between,
// then notify the successor and refresh the successor list.
func (n *Node) stabilize() {
	succRef, err := n.liveSuccessor()
	if err != nil {
		return
	}
	// Classic Chord step: if our successor's predecessor lies between us
	// and the successor, adopt it. When the successor is ourselves (a ring
	// of one that another node has joined), betweenOpen's degenerate
	// (a, a) interval admits any other node, which bootstraps the ring.
	if succ, err := n.ring.resolve(succRef); err == nil {
		succ.mu.RLock()
		pred := succ.predecessor
		succ.mu.RUnlock()
		if pred != nil && betweenOpen(pred.id, n.id, succRef.id) {
			if _, err := n.ring.resolve(*pred); err == nil {
				succRef = *pred
			}
		}
	}
	// Adopt (possibly new) successor and rebuild the successor list by
	// walking successor pointers.
	list := []nodeRef{succRef}
	cur := succRef
	for len(list) < successorFan {
		if cur.name == n.name {
			break
		}
		node, err := n.ring.resolve(cur)
		if err != nil {
			break
		}
		node.mu.RLock()
		var next nodeRef
		if len(node.successors) > 0 {
			next = node.successors[0]
		} else {
			next = node.ref()
		}
		node.mu.RUnlock()
		if next.name == list[0].name || next.name == n.name {
			break
		}
		dup := false
		for _, l := range list {
			if l.name == next.name {
				dup = true
				break
			}
		}
		if dup {
			break
		}
		list = append(list, next)
		cur = next
	}
	n.mu.Lock()
	n.successors = list
	n.mu.Unlock()
	if succRef.name != n.name {
		if succ, err := n.ring.resolve(succRef); err == nil {
			succ.notify(n.ref())
		}
	}
}

// notify tells the node that candidate might be its predecessor.
func (n *Node) notify(candidate nodeRef) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if candidate.name == n.name {
		return
	}
	if n.predecessor == nil || betweenOpen(candidate.id, n.predecessor.id, n.id) {
		c := candidate
		n.predecessor = &c
	}
}

// fixFingers refreshes one finger table entry per call, cycling through the
// table across calls (the classic Chord schedule).
func (n *Node) fixFingers() {
	n.mu.Lock()
	i := n.nextFinger
	n.nextFinger = (n.nextFinger + 1) % fingerBits
	n.mu.Unlock()
	target := n.id + (ID(1) << uint(i))
	ref, err := n.findSuccessor(target)
	if err != nil {
		return
	}
	n.mu.Lock()
	r := ref
	n.fingers[i] = &r
	n.mu.Unlock()
}

// handOff extracts and removes the entries this node no longer owns after a
// node with the given id joined as its predecessor: keys in (pred, newID].
func (n *Node) handOff(newID ID) map[string]map[string]struct{} {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]map[string]struct{})
	for k, vals := range n.store {
		kid := HashID(k)
		if !between(kid, newID, n.id) { // no longer in (newID, n]: hand off
			out[k] = vals
			delete(n.store, k)
		}
	}
	return out
}

// putLocal adds value to the key's set on this node.
func (n *Node) putLocal(key, value string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	set := n.store[key]
	if set == nil {
		set = make(map[string]struct{})
		n.store[key] = set
	}
	set[value] = struct{}{}
}

// getLocal returns the key's value set on this node.
func (n *Node) getLocal(key string) []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	set := n.store[key]
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// removeLocal removes value from the key's set on this node.
func (n *Node) removeLocal(key, value string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if set := n.store[key]; set != nil {
		delete(set, value)
		if len(set) == 0 {
			delete(n.store, key)
		}
	}
}

// keysLocal returns the number of keys stored on this node.
func (n *Node) keysLocal() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.store)
}

// replicaTargets returns the responsible node for key plus repFac-1 of its
// successors.
func (r *Ring) replicaTargets(key string) ([]nodeRef, error) {
	entry, err := r.anyNode()
	if err != nil {
		return nil, err
	}
	primary, err := entry.findSuccessor(HashID(key))
	if err != nil {
		return nil, err
	}
	targets := []nodeRef{primary}
	cur := primary
	for len(targets) < r.repFac {
		node, err := r.resolve(cur)
		if err != nil {
			break
		}
		next, err := node.liveSuccessor()
		if err != nil || next.name == primary.name {
			break
		}
		dup := false
		for _, t := range targets {
			if t.name == next.name {
				dup = true
				break
			}
		}
		if dup {
			break
		}
		targets = append(targets, next)
		cur = next
	}
	return targets, nil
}

// Put publishes (key, value) into the DHT, replicating the entry on the
// responsible node and its successors. For the DDC, key is the data UID and
// value the owning host identifier.
func (r *Ring) Put(key, value string) error {
	targets, err := r.replicaTargets(key)
	if err != nil {
		return err
	}
	stored := 0
	for _, t := range targets {
		node, err := r.resolve(t)
		if err != nil {
			continue
		}
		node.putLocal(key, value)
		stored++
	}
	if stored == 0 {
		return fmt.Errorf("dht: put %s: no live replica target", key)
	}
	return nil
}

// Get returns the merged value set for key across its replica group.
func (r *Ring) Get(key string) ([]string, error) {
	targets, err := r.replicaTargets(key)
	if err != nil {
		return nil, err
	}
	merged := make(map[string]struct{})
	queried := 0
	for _, t := range targets {
		node, err := r.resolve(t)
		if err != nil {
			continue
		}
		queried++
		for _, v := range node.getLocal(key) {
			merged[v] = struct{}{}
		}
	}
	if queried == 0 {
		return nil, fmt.Errorf("dht: get %s: no live replica target", key)
	}
	out := make([]string, 0, len(merged))
	for v := range merged {
		out = append(out, v)
	}
	sort.Strings(out)
	return out, nil
}

// Remove withdraws (key, value) from the replica group.
func (r *Ring) Remove(key, value string) error {
	targets, err := r.replicaTargets(key)
	if err != nil {
		return err
	}
	for _, t := range targets {
		if node, err := r.resolve(t); err == nil {
			node.removeLocal(key, value)
		}
	}
	return nil
}

// Lookup returns the name of the node responsible for key.
func (r *Ring) Lookup(key string) (string, error) {
	entry, err := r.anyNode()
	if err != nil {
		return "", err
	}
	ref, err := entry.findSuccessor(HashID(key))
	if err != nil {
		return "", err
	}
	return ref.name, nil
}

// LoadByNode reports how many keys each live node stores, exposing the load
// balancing the paper credits the DDC with.
func (r *Ring) LoadByNode() map[string]int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int)
	for _, n := range r.nodes {
		n.mu.RLock()
		if n.alive {
			out[n.name] = len(n.store)
		}
		n.mu.RUnlock()
	}
	return out
}
