package dht

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func buildRing(t *testing.T, n int, opts ...Option) *Ring {
	t.Helper()
	r := NewRing(opts...)
	for i := 0; i < n; i++ {
		if _, err := r.AddNode(fmt.Sprintf("host%03d", i)); err != nil {
			t.Fatalf("AddNode %d: %v", i, err)
		}
		if i%8 == 0 {
			r.Stabilize()
		}
	}
	r.StabilizeFully()
	return r
}

func TestSingleNodeRing(t *testing.T) {
	r := NewRing()
	if _, err := r.AddNode("solo"); err != nil {
		t.Fatal(err)
	}
	if err := r.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	vals, err := r.Get("k")
	if err != nil || len(vals) != 1 || vals[0] != "v" {
		t.Fatalf("Get = %v, %v", vals, err)
	}
	owner, err := r.Lookup("k")
	if err != nil || owner != "solo" {
		t.Fatalf("Lookup = %q, %v", owner, err)
	}
}

func TestEmptyRing(t *testing.T) {
	r := NewRing()
	if err := r.Put("k", "v"); err == nil {
		t.Error("Put on empty ring succeeded")
	}
	if _, err := r.Get("k"); err == nil {
		t.Error("Get on empty ring succeeded")
	}
	if _, err := r.Lookup("k"); err == nil {
		t.Error("Lookup on empty ring succeeded")
	}
}

func TestDuplicateNodeRejected(t *testing.T) {
	r := NewRing()
	r.AddNode("a")
	if _, err := r.AddNode("a"); err == nil {
		t.Error("duplicate AddNode succeeded")
	}
}

func TestPutGetManyNodes(t *testing.T) {
	r := buildRing(t, 32, WithSeed(7))
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("data-%04d", i)
		if err := r.Put(key, fmt.Sprintf("owner-%d", i)); err != nil {
			t.Fatalf("Put %s: %v", key, err)
		}
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("data-%04d", i)
		vals, err := r.Get(key)
		if err != nil {
			t.Fatalf("Get %s: %v", key, err)
		}
		want := fmt.Sprintf("owner-%d", i)
		if len(vals) != 1 || vals[0] != want {
			t.Fatalf("Get %s = %v, want [%s]", key, vals, want)
		}
	}
}

func TestMultiValue(t *testing.T) {
	r := buildRing(t, 8, WithSeed(3))
	// The DDC maps one dataID to every owning host.
	for i := 0; i < 5; i++ {
		if err := r.Put("data-X", fmt.Sprintf("host-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	vals, err := r.Get("data-X")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 5 {
		t.Fatalf("Get = %v, want 5 owners", vals)
	}
	if err := r.Remove("data-X", "host-2"); err != nil {
		t.Fatal(err)
	}
	vals, _ = r.Get("data-X")
	if len(vals) != 4 {
		t.Fatalf("after Remove: %v", vals)
	}
	for _, v := range vals {
		if v == "host-2" {
			t.Fatal("removed value still present")
		}
	}
}

// ringOrder computes the expected successor of each node from sorted IDs.
func ringOrder(r *Ring) []*Node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var live []*Node
	for _, n := range r.nodes {
		n.mu.RLock()
		if n.alive {
			live = append(live, n)
		}
		n.mu.RUnlock()
	}
	sort.Slice(live, func(i, j int) bool { return live[i].id < live[j].id })
	return live
}

func TestSuccessorInvariant(t *testing.T) {
	r := buildRing(t, 24, WithSeed(11))
	live := ringOrder(r)
	for i, n := range live {
		want := live[(i+1)%len(live)]
		n.mu.RLock()
		got := n.successors[0].name
		n.mu.RUnlock()
		if got != want.name {
			t.Errorf("node %s successor = %s, want %s", n.name, got, want.name)
		}
	}
}

func TestLookupConsistentAcrossEntryPoints(t *testing.T) {
	r := buildRing(t, 16, WithSeed(5))
	live := ringOrder(r)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		id := HashID(key)
		// Ground truth: first node clockwise from id.
		var want string
		for _, n := range live {
			if n.id >= id {
				want = n.name
				break
			}
		}
		if want == "" {
			want = live[0].name
		}
		// Every entry point must agree.
		for _, entry := range []*Node{live[0], live[len(live)/2], live[len(live)-1]} {
			ref, err := entry.findSuccessor(id)
			if err != nil {
				t.Fatalf("findSuccessor from %s: %v", entry.name, err)
			}
			if ref.name != want {
				t.Errorf("lookup(%s) from %s = %s, want %s", key, entry.name, ref.name, want)
			}
		}
	}
}

func TestEntriesSurviveSingleFailure(t *testing.T) {
	r := buildRing(t, 16, WithSeed(13))
	for i := 0; i < 100; i++ {
		if err := r.Put(fmt.Sprintf("k%d", i), "owner"); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the node responsible for k0 specifically.
	owner, err := r.Lookup("k0")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Fail(owner); err != nil {
		t.Fatal(err)
	}
	r.StabilizeFully()
	lost := 0
	for i := 0; i < 100; i++ {
		vals, err := r.Get(fmt.Sprintf("k%d", i))
		if err != nil || len(vals) == 0 {
			lost++
		}
	}
	if lost != 0 {
		t.Errorf("%d/100 entries lost after one failure (replication factor %d)", lost, r.repFac)
	}
}

func TestRingHealsAfterMultipleFailures(t *testing.T) {
	r := buildRing(t, 20, WithSeed(17))
	names := r.Nodes()
	for _, victim := range names[:5] {
		r.Fail(victim)
	}
	r.StabilizeFully()
	if got := r.Size(); got != 15 {
		t.Fatalf("Size = %d, want 15", got)
	}
	// Ring must still route every key somewhere live.
	for i := 0; i < 50; i++ {
		if _, err := r.Lookup(fmt.Sprintf("q%d", i)); err != nil {
			t.Errorf("Lookup after failures: %v", err)
		}
	}
	// Successor invariant restored.
	live := ringOrder(r)
	for i, n := range live {
		want := live[(i+1)%len(live)]
		n.mu.RLock()
		got := n.successors[0].name
		n.mu.RUnlock()
		if got != want.name {
			t.Errorf("node %s successor = %s, want %s", n.name, got, want.name)
		}
	}
}

func TestJoinTransfersKeys(t *testing.T) {
	r := buildRing(t, 4, WithSeed(19))
	for i := 0; i < 200; i++ {
		r.Put(fmt.Sprintf("k%d", i), "v")
	}
	// A new node joins; afterwards, every key must still resolve and the
	// new node must be responsible for its share.
	if _, err := r.AddNode("late-joiner"); err != nil {
		t.Fatal(err)
	}
	r.StabilizeFully()
	found := 0
	for i := 0; i < 200; i++ {
		vals, err := r.Get(fmt.Sprintf("k%d", i))
		if err == nil && len(vals) > 0 {
			found++
		}
	}
	if found != 200 {
		t.Errorf("%d/200 keys resolvable after join", found)
	}
}

func TestLoadBalancing(t *testing.T) {
	r := buildRing(t, 50, WithSeed(23), WithReplication(1))
	const keys = 5000
	for i := 0; i < keys; i++ {
		if err := r.Put(fmt.Sprintf("k%06d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	load := r.LoadByNode()
	max := 0
	for _, c := range load {
		if c > max {
			max = c
		}
	}
	// Consistent hashing with 50 nodes: expect mean 100; allow generous
	// spread (no virtual nodes) but catch pathological centralisation.
	if max > keys/4 {
		t.Errorf("one node holds %d/%d keys: load balancing broken", max, keys)
	}
}

func TestHopCountLogarithmic(t *testing.T) {
	r := buildRing(t, 64, WithSeed(29), WithReplication(1))
	r.ResetStats()
	const lookups = 200
	for i := 0; i < lookups; i++ {
		if _, err := r.Lookup(fmt.Sprintf("h%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	hops, _ := r.Stats()
	perLookup := float64(hops) / lookups
	// O(log n) with n=64 means ~6 forwarding steps; our accounting charges
	// resolve() calls (fingers walked plus successor checks), so allow
	// headroom, but fail if routing is linear (~32+).
	if perLookup > 24 {
		t.Errorf("mean resolve-calls per lookup = %.1f; routing looks linear", perLookup)
	}
}

func TestQuickBetween(t *testing.T) {
	f := func(x, a, b uint64) bool {
		in := between(ID(x), ID(a), ID(b))
		// Model with big arithmetic: rotate so a' = 0.
		xr := x - a
		br := b - a
		var want bool
		if br == 0 {
			want = true
		} else {
			want = xr > 0 && xr <= br
		}
		return in == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestQuickLookupMatchesSortedRing(t *testing.T) {
	r := buildRing(t, 12, WithSeed(31))
	live := ringOrder(r)
	f := func(key string) bool {
		id := HashID(key)
		var want string
		for _, n := range live {
			if n.id >= id {
				want = n.name
				break
			}
		}
		if want == "" {
			want = live[0].name
		}
		got, err := r.Lookup(key)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickPutGetRandomChurnFree(t *testing.T) {
	r := buildRing(t, 10, WithSeed(37))
	rng := rand.New(rand.NewSource(41))
	f := func() bool {
		key := fmt.Sprintf("k%d", rng.Intn(1000))
		val := fmt.Sprintf("v%d", rng.Intn(10))
		if err := r.Put(key, val); err != nil {
			return false
		}
		vals, err := r.Get(key)
		if err != nil {
			return false
		}
		for _, v := range vals {
			if v == val {
				return true
			}
		}
		return false
	}
	for i := 0; i < 300; i++ {
		if !f() {
			t.Fatalf("put/get iteration %d failed", i)
		}
	}
}

func TestRejoinAfterFailure(t *testing.T) {
	r := buildRing(t, 6, WithSeed(43))
	r.Fail("host002")
	r.StabilizeFully()
	if _, err := r.AddNode("host002"); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	r.StabilizeFully()
	if got := r.Size(); got != 6 {
		t.Errorf("Size after rejoin = %d, want 6", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	r := buildRing(t, 8, WithSeed(47))
	r.ResetStats()
	r.Put("a", "b")
	hops, calls := r.Stats()
	if hops == 0 || calls == 0 {
		t.Errorf("no hops recorded: hops=%d calls=%d", hops, calls)
	}
}
