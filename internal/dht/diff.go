package dht

import "sort"

// Range is an arc (Lo, Hi] of the identifier circle: it contains every id
// strictly above Lo and at or below Hi, wrapping through zero when
// Lo >= Hi. Half-open on the low side matches ShardOf's "first point at or
// after" rule — the point anchoring an arc owns the arc's high endpoint.
type Range struct {
	Lo, Hi ID
}

// Contains reports whether id lies on the arc.
func (r Range) Contains(id ID) bool {
	if r.Lo < r.Hi {
		return id > r.Lo && id <= r.Hi
	}
	return id > r.Lo || id <= r.Hi
}

// ContainsKey reports whether key's identifier lies on the arc.
func (r Range) ContainsKey(key string) bool { return r.Contains(HashID(key)) }

// Move is one arc of the circle whose owner changes between two
// placements: every key hashing into Range moves from shard From to shard
// To.
type Move struct {
	Range Range
	From  int
	To    int
}

// ownerOfID is ShardOf on a raw identifier: the shard owning the first
// placement point at or after id (wrapping).
func (p *Placement) ownerOfID(id ID) int {
	i := sort.Search(len(p.points), func(i int) bool { return p.points[i].id >= id })
	if i == len(p.points) {
		i = 0
	}
	return p.points[i].shard
}

// Diff computes the exact set of arcs whose ownership differs between two
// placements. The union of both placements' points cuts the circle into
// elementary arcs; within one such arc no placement point intervenes, so
// ownership is uniform in BOTH placements and equals the owner of the
// arc's high boundary. Arcs whose owner is unchanged are dropped; adjacent
// arcs making the same From→To move are coalesced. A key is in some
// returned Move's Range if and only if old.ShardOf(key) != next.ShardOf(key).
func Diff(old, next *Placement) []Move {
	ids := make([]ID, 0, len(old.points)+len(next.points))
	for _, pt := range old.points {
		ids = append(ids, pt.id)
	}
	for _, pt := range next.points {
		ids = append(ids, pt.id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	uniq := ids[:0]
	for _, id := range ids {
		if len(uniq) == 0 || uniq[len(uniq)-1] != id {
			uniq = append(uniq, id)
		}
	}
	var out []Move
	for i, hi := range uniq {
		lo := uniq[(i+len(uniq)-1)%len(uniq)]
		from, to := old.ownerOfID(hi), next.ownerOfID(hi)
		if from == to {
			continue
		}
		if n := len(out) - 1; n >= 0 && out[n].Range.Hi == lo && out[n].From == from && out[n].To == to {
			out[n].Range.Hi = hi // extend the previous arc
			continue
		}
		out = append(out, Move{Range: Range{Lo: lo, Hi: hi}, From: from, To: to})
	}
	return out
}
