package dht

import (
	"fmt"
	"sort"
)

// placementVnodes is the number of virtual points each shard contributes to
// the identifier circle. More points smooth the per-shard key share (the
// classical consistent-hashing trade-off); 32 keeps the worst shard within a
// few percent of fair for the shard counts BitDew deploys (2–64).
const placementVnodes = 32

// Placement maps keys onto one of n shards by consistent hashing on the same
// 64-bit identifier circle the DHT routes on (HashID). It is the static
// little sibling of the full Chord Ring: where the Ring places *entries* on
// *nodes* that join and leave, Placement places *data UIDs* on *service
// shards* whose membership is fixed by configuration — the sharded D*
// service plane. Every client and every shard derive the identical mapping
// from nothing but the shard count, so no placement state is exchanged.
//
// Each shard i contributes placementVnodes points hashed from the stable
// label "shard-i#v". Labels (not addresses) anchor the circle, so a shard
// restarting on a new port keeps its key range, and growing the plane from n
// to n+1 shards only moves the keys claimed by the new shard's points —
// every key either keeps its shard or moves to shard n (the consistent-hash
// property TestPlacementMonotone pins).
type Placement struct {
	n      int
	points []placePoint // sorted by id, ties broken by shard
	// succ[s] is shard s's full successor walk (s first, then every other
	// shard in clockwise first-occurrence order), precomputed once so the
	// failover/reroute hot path never re-scans the n×vnodes point list.
	succ [][]int
}

type placePoint struct {
	id    ID
	shard int
}

// NewPlacement builds the canonical placement over n shards (n >= 1).
func NewPlacement(n int) *Placement {
	if n < 1 {
		panic(fmt.Sprintf("dht: placement over %d shards", n))
	}
	p := &Placement{n: n, points: make([]placePoint, 0, n*placementVnodes)}
	for shard := 0; shard < n; shard++ {
		for v := 0; v < placementVnodes; v++ {
			p.points = append(p.points, placePoint{
				id:    HashID(fmt.Sprintf("shard-%d#%d", shard, v)),
				shard: shard,
			})
		}
	}
	sort.Slice(p.points, func(i, j int) bool {
		if p.points[i].id != p.points[j].id {
			return p.points[i].id < p.points[j].id
		}
		return p.points[i].shard < p.points[j].shard
	})
	p.succ = make([][]int, n)
	for shard := 0; shard < n; shard++ {
		p.succ[shard] = p.successorsWalk(shard, n)
	}
	return p
}

// Shards returns the shard count the placement was built over.
func (p *Placement) Shards() int { return p.n }

// Successors returns the replica set of shard's key range: shard itself
// followed by up to r-1 distinct successor shards, walking the identifier
// circle clockwise from shard's lowest placement point. The walk is a
// deterministic function of (n, shard, r) alone — every client and every
// shard derive the identical replica set from the shard count, exactly like
// ShardOf derives the home shard — so no replica-placement state is ever
// exchanged. Ranges replicate wholesale (a shard's WAL is one ordered
// mutation stream, shipped as a unit), which is why the successor list is
// per SHARD rather than per key: the circle anchors the walk, the range
// rides it whole.
func (p *Placement) Successors(shard, r int) []int {
	if shard < 0 || shard >= p.n {
		panic(fmt.Sprintf("dht: successors of shard %d on a %d-shard placement", shard, p.n))
	}
	if r < 1 {
		r = 1
	}
	if r > p.n {
		r = p.n
	}
	out := make([]int, r)
	copy(out, p.succ[shard][:r])
	return out
}

// successorsWalk is the original O(n·vnodes) circle walk, kept as the
// ground truth NewPlacement precomputes from (and the cross-check test
// pins Successors against).
func (p *Placement) successorsWalk(shard, r int) []int {
	out := []int{shard}
	if r == 1 {
		return out
	}
	// Find shard's lowest point, then walk clockwise collecting the first
	// occurrence of each other shard.
	start := -1
	for i, pt := range p.points {
		if pt.shard == shard {
			start = i
			break
		}
	}
	seen := map[int]bool{shard: true}
	for off := 1; off <= len(p.points) && len(out) < r; off++ {
		pt := p.points[(start+off)%len(p.points)]
		if !seen[pt.shard] {
			seen[pt.shard] = true
			out = append(out, pt.shard)
		}
	}
	return out
}

// ShardOf returns the home shard of key: the shard owning the first
// placement point at or after HashID(key) on the circle (wrapping).
func (p *Placement) ShardOf(key string) int {
	if p.n == 1 {
		return 0
	}
	id := HashID(key)
	i := sort.Search(len(p.points), func(i int) bool { return p.points[i].id >= id })
	if i == len(p.points) {
		i = 0 // wrapped past the highest point
	}
	return p.points[i].shard
}
