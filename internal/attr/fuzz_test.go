package attr

import (
	"strings"
	"testing"
	"time"
)

// TestParseMalformedAndBoundary is the table of malformed and boundary
// attribute definitions: each either parses to a pinned value or fails
// with a pinned error fragment. It covers the edges the paper's listings
// never show — out-of-range replicas, overflowing lifetimes, empty
// affinities — which FuzzParse below then stresses generatively.
func TestParseMalformedAndBoundary(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantErr string // "" = must parse
		check   func(Attribute) bool
	}{
		// Replica boundaries. -1 is the broadcast sentinel, anything
		// below is out of range.
		{name: "replica broadcast", src: "attr a = { replica = -1 }",
			check: func(a Attribute) bool { return a.Replica == ReplicaAll && a.WantsBroadcast() }},
		{name: "replica negative beyond sentinel", src: "attr a = { replica = -2 }",
			wantErr: "out of range"},
		{name: "replica zero normalises via default", src: "attr a = { replica = 0 }",
			check: func(a Attribute) bool { return a.Normalize().Replica == 1 }},
		{name: "replica huge", src: "attr a = { replica = 1000000 }",
			check: func(a Attribute) bool { return a.Replica == 1000000 }},
		{name: "replica non-integer", src: "attr a = { replica = many }",
			wantErr: "wants an integer"},

		// Lifetime boundaries. Seconds convert to time.Duration; values
		// the Duration cannot hold must error, not wrap around.
		{name: "lifetime zero", src: "attr a = { abstime = 0 }",
			check: func(a Attribute) bool { return a.LifetimeAbs == 0 && !a.HasLifetime() }},
		{name: "lifetime max representable", src: "attr a = { abstime = 9223372036 }",
			check: func(a Attribute) bool { return a.LifetimeAbs == 9223372036*time.Second }},
		{name: "lifetime huge overflows", src: "attr a = { abstime = 9223372037 }",
			wantErr: "overflows"},
		{name: "lifetime absurd overflows", src: "attr a = { lifetime = 99999999999999999 }",
			wantErr: "overflows"},
		{name: "lifetime negative", src: "attr a = { abstime = -1 }",
			wantErr: "negative lifetime"},
		{name: "lifetime relative by name", src: "attr a = { lifetime = Collector }",
			check: func(a Attribute) bool { return a.LifetimeRel == "Collector" && a.LifetimeAbs == 0 }},

		// Affinity boundaries. An empty affinity means "no placement
		// dependency" — it must parse and behave like no affinity at all;
		// self-affinity is a definition error.
		{name: "affinity empty", src: `attr a = { affinity = "" }`,
			check: func(a Attribute) bool { return a.Affinity == "" }},
		{name: "affinity self", src: `attr a = { affinity = "a" }`,
			wantErr: "affinity to itself"},
		{name: "affinity other", src: `attr a = { affinity = "base" }`,
			check: func(a Attribute) bool { return a.Affinity == "base" }},

		// Structural malformations.
		{name: "empty input", src: "", wantErr: "expected keyword"},
		{name: "missing name", src: "attr = { }", wantErr: ""},
		{name: "unterminated body", src: "attr a = { replica = 1", wantErr: "unterminated"},
		{name: "missing value", src: "attr a = { replica = }", wantErr: ""},
		{name: "unterminated string", src: `attr a = { affinity = "x }`, wantErr: "unterminated string"},
		{name: "unknown key", src: "attr a = { color = red }", wantErr: "unknown attribute key"},
		{name: "trailing garbage", src: "attr a = { } nonsense {", wantErr: ""},
		{name: "boolean for integer key", src: "attr a = { replica = true }", wantErr: "wants an integer"},
		{name: "integer for boolean key", src: "attr a = { pinned = 3 }", wantErr: "wants a boolean"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, err := Parse(tc.src)
			if tc.wantErr == "" && tc.check == nil {
				// Error expected but its message is not pinned.
				if err == nil {
					t.Fatalf("Parse(%q) = %+v, want error", tc.src, a)
				}
				return
			}
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("Parse(%q) = %+v, want error containing %q", tc.src, a, tc.wantErr)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("Parse(%q) error %q, want it to contain %q", tc.src, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.src, err)
			}
			if !tc.check(a) {
				t.Fatalf("Parse(%q) = %+v fails its check", tc.src, a)
			}
		})
	}
}

// FuzzParse stresses the attribute-language parser: no input may panic it,
// and every input it ACCEPTS must satisfy the language's own contracts —
// the attribute validates, and its String rendering round-trips through
// Parse to the same (normalized) attribute.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"attr update = { replica = -1, oob = bittorrent, abstime = 43200 }",
		`attribute Sequence = { fault tolerance = true, protocol = "http", lifetime = Collector, replication = 2 }`,
		"Collector attribute { pinned = yes }",
		"attr a = { }",
		"attr a = { replica = 0 }",
		`attr a = { affinity = "" }`,
		"attr a = { abstime = 9223372036854775807 }",
		"attr a = { lifetime = -9223372036854775808 }",
		"attr x = { replica = 1, replica = -1 }",
		"attr a = { fault tolerance = off ; ttl = 1 }",
		"attr \xff = { }",
		"attr a = { oob = 'FTP' }",
		// Regression: a non-printable byte in a string value must survive
		// the %q-escaped rendering (the parser decodes Go-style escapes).
		"Attr o = {lifetime=\xfa}",
		`attr a = { affinity = "with \"escaped\" quotes" }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		a, err := Parse(src)
		if err != nil {
			return // rejected input: only the absence of panics matters
		}
		if verr := a.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted an invalid attribute %+v: %v", src, a, verr)
		}
		rendered := a.String()
		b, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q) = %+v, but re-parsing its rendering %q failed: %v", src, a, rendered, err)
		}
		if a.Normalize() != b.Normalize() {
			t.Fatalf("round trip drift:\n  src      %q\n  parsed   %+v\n  rendered %q\n  reparsed %+v", src, a, rendered, b)
		}
	})
}
