// Package attr implements BitDew data attributes and the small attribute
// definition language used throughout the paper (Listings 1 and 3).
//
// Attributes are the heart of BitDew's programming model: instead of issuing
// explicit host-to-host transfers, a programmer tags each datum with a set of
// attributes and the runtime environment interprets them to drive data life
// cycle, placement, replication and fault tolerance (paper §3.2).
//
// Five attributes are defined:
//
//	replica            how many live instances of the datum should exist
//	fault tolerance    reschedule replicas lost to host crashes
//	lifetime           absolute duration, or relative to another datum
//	affinity           placement dependency on another datum
//	transfer protocol  hint for the out-of-band transfer protocol
package attr

import (
	"fmt"
	"strings"
	"time"
)

// ReplicaAll is the special replica value meaning "distribute to every node
// in the network" (the paper writes it as replica = -1).
const ReplicaAll = -1

// Attribute is the set of metadata driving the runtime's treatment of one
// datum. The zero value is a valid attribute: one replica, not fault
// tolerant, infinite lifetime, no affinity, default protocol.
type Attribute struct {
	// Name identifies the attribute; life-cycle event handlers dispatch on
	// it (see the Updater example in the paper, Listing 2).
	Name string

	// Replica is the number of simultaneous instances wanted in the system,
	// or ReplicaAll for a broadcast to every node. Zero is normalised to 1.
	Replica int

	// FaultTolerant requests that replicas lost to a host crash be
	// rescheduled so the live count returns to Replica.
	FaultTolerant bool

	// LifetimeAbs is an absolute time-to-live after scheduling; zero means
	// no absolute expiry.
	LifetimeAbs time.Duration

	// LifetimeRel names another datum (by name or UID); when that datum is
	// deleted this one becomes obsolete. Empty means no relative lifetime.
	LifetimeRel string

	// Affinity names another datum; this datum is scheduled onto every host
	// holding the named datum. Affinity is stronger than Replica (§3.2).
	Affinity string

	// Protocol is the preferred out-of-band transfer protocol ("ftp",
	// "http", "bittorrent"). Empty selects the runtime default.
	Protocol string

	// Pinned marks the datum as owned by a specific node; the scheduler
	// must not count the pinning node against Replica nor delete it there.
	Pinned bool
}

// Default returns the attribute applied to data scheduled with no explicit
// attribute: a single, non fault-tolerant replica with no lifetime bound.
func Default() Attribute { return Attribute{Name: "default", Replica: 1} }

// Normalize returns a copy of a with zero fields replaced by their defaults.
func (a Attribute) Normalize() Attribute {
	if a.Replica == 0 {
		a.Replica = 1
	}
	return a
}

// WantsBroadcast reports whether the attribute requests distribution to
// every node (replica = -1).
func (a Attribute) WantsBroadcast() bool { return a.Replica == ReplicaAll }

// HasLifetime reports whether the attribute carries any lifetime bound.
func (a Attribute) HasLifetime() bool { return a.LifetimeAbs > 0 || a.LifetimeRel != "" }

// String renders the attribute in the paper's definition language; the
// result round-trips through Parse.
func (a Attribute) String() string {
	var parts []string
	if a.Replica != 0 && a.Replica != 1 {
		parts = append(parts, fmt.Sprintf("replica = %d", a.Replica))
	}
	if a.FaultTolerant {
		parts = append(parts, "fault_tolerance = true")
	}
	if a.LifetimeAbs > 0 {
		parts = append(parts, fmt.Sprintf("abstime = %d", int64(a.LifetimeAbs/time.Second)))
	}
	if a.LifetimeRel != "" {
		parts = append(parts, fmt.Sprintf("lifetime = %q", a.LifetimeRel))
	}
	if a.Affinity != "" {
		parts = append(parts, fmt.Sprintf("affinity = %q", a.Affinity))
	}
	if a.Protocol != "" {
		parts = append(parts, fmt.Sprintf("oob = %q", a.Protocol))
	}
	if a.Pinned {
		parts = append(parts, "pinned = true")
	}
	return fmt.Sprintf("attr %s = { %s }", a.Name, strings.Join(parts, ", "))
}

// Validate reports the first semantic problem with the attribute, or nil.
func (a Attribute) Validate() error {
	if a.Replica < ReplicaAll {
		return fmt.Errorf("attr %s: replica %d out of range (minimum is -1)", a.Name, a.Replica)
	}
	if a.LifetimeAbs < 0 {
		return fmt.Errorf("attr %s: negative absolute lifetime %v", a.Name, a.LifetimeAbs)
	}
	if a.Affinity != "" && a.Affinity == a.Name {
		return fmt.Errorf("attr %s: affinity to itself", a.Name)
	}
	return nil
}
