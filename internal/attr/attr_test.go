package attr

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestParseUpdaterExample(t *testing.T) {
	// Listing 1 of the paper (spelling "replicat" included).
	a, err := Parse("attr update = { replicat =-1, oob = bittorrent, abstime=43200}")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if a.Name != "update" {
		t.Errorf("Name = %q, want update", a.Name)
	}
	if !a.WantsBroadcast() {
		t.Errorf("Replica = %d, want broadcast (-1)", a.Replica)
	}
	if a.Protocol != "bittorrent" {
		t.Errorf("Protocol = %q, want bittorrent", a.Protocol)
	}
	if a.LifetimeAbs != 43200*time.Second {
		t.Errorf("LifetimeAbs = %v, want 43200s", a.LifetimeAbs)
	}
}

func TestParseBlastListing(t *testing.T) {
	// Listing 3 of the paper, lightly normalised.
	src := `
attribute Application = { replication = -1, protocol = "bittorrent" }
attribute Genebase = { protocol = "bittorrent", lifetime = Collector, affinity = Sequence }
attribute Sequence = { fault tolerance = true, protocol = "http", lifetime = Collector, replication = 2 }
attribute Result = { protocol = "http", affinity = Collector, lifetime = Collector }
Collector attribute { }
`
	attrs, err := ParseAll(src)
	if err != nil {
		t.Fatalf("ParseAll: %v", err)
	}
	if len(attrs) != 5 {
		t.Fatalf("got %d attributes, want 5", len(attrs))
	}
	byName := map[string]Attribute{}
	for _, a := range attrs {
		byName[a.Name] = a
	}
	if g := byName["Genebase"]; g.Affinity != "Sequence" || g.LifetimeRel != "Collector" {
		t.Errorf("Genebase = %+v, want affinity Sequence, lifetime Collector", g)
	}
	if s := byName["Sequence"]; !s.FaultTolerant || s.Replica != 2 || s.Protocol != "http" {
		t.Errorf("Sequence = %+v", s)
	}
	if app := byName["Application"]; !app.WantsBroadcast() {
		t.Errorf("Application = %+v, want broadcast", app)
	}
	if c := byName["Collector"]; c.Replica != 1 {
		t.Errorf("Collector replica = %d, want default 1", c.Replica)
	}
}

func TestParseComments(t *testing.T) {
	attrs, err := ParseAll("# leading comment\nattr a = { replica = 3 } # trailing\n")
	if err != nil {
		t.Fatalf("ParseAll: %v", err)
	}
	if len(attrs) != 1 || attrs[0].Replica != 3 {
		t.Fatalf("got %+v", attrs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                 // empty
		"attr = { }",                       // missing name (= parses as name... ensure error)
		"attr a = { bogus = 1 }",           // unknown key
		"attr a = { replica = many }",      // non-integer replica
		"attr a = { replica = 1",           // unterminated
		"attr a = { ft = 3 }",              // non-boolean ft
		"attr a = { affinity = a }",        // self affinity
		"attr a = { replica = -2 }",        // out of range
		"attr a = { abstime = soon }",      // non-integer abstime
		"attr a = { replica = 1 } trailer", // trailing garbage (Parse only)
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseQuotedAndBareEquivalent(t *testing.T) {
	q, err := Parse(`attr a = { oob = "ftp" }`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse(`attr a = { oob = ftp }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Protocol != b.Protocol {
		t.Errorf("quoted %q != bare %q", q.Protocol, b.Protocol)
	}
}

func TestStringRoundTrip(t *testing.T) {
	in := Attribute{
		Name: "Genebase", Replica: 4, FaultTolerant: true,
		LifetimeAbs: 90 * time.Second, LifetimeRel: "Collector",
		Affinity: "Sequence", Protocol: "bittorrent", Pinned: true,
	}
	out, err := Parse(in.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", in.String(), err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip: in %+v out %+v", in, out)
	}
}

// genAttribute builds a random valid attribute for property testing.
func genAttribute(r *rand.Rand) Attribute {
	names := []string{"update", "Genebase", "Sequence", "Result", "x1", "data-2"}
	protos := []string{"", "ftp", "http", "bittorrent"}
	refs := []string{"", "Collector", "other"}
	a := Attribute{
		Name:          names[r.Intn(len(names))],
		Replica:       r.Intn(12) - 1,
		FaultTolerant: r.Intn(2) == 0,
		LifetimeAbs:   time.Duration(r.Intn(4000)) * time.Second,
		LifetimeRel:   refs[r.Intn(len(refs))],
		Affinity:      refs[r.Intn(len(refs))],
		Protocol:      protos[r.Intn(len(protos))],
		Pinned:        r.Intn(2) == 0,
	}
	if a.Replica == 0 {
		a.Replica = 1
	}
	if a.Affinity == a.Name {
		a.Affinity = ""
	}
	return a
}

func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		a := genAttribute(rand.New(rand.NewSource(seed)))
		parsed, err := Parse(a.String())
		if err != nil {
			t.Logf("Parse(%q): %v", a.String(), err)
			return false
		}
		return reflect.DeepEqual(a, parsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		// Must never panic, whatever the input.
		_, _ = Parse(s)
		_, _ = ParseAll(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	a := Attribute{Name: "n"}
	if got := a.Normalize().Replica; got != 1 {
		t.Errorf("Normalize Replica = %d, want 1", got)
	}
	a.Replica = ReplicaAll
	if got := a.Normalize().Replica; got != ReplicaAll {
		t.Errorf("Normalize broadcast Replica = %d, want -1", got)
	}
}

func TestHasLifetime(t *testing.T) {
	if (Attribute{}).HasLifetime() {
		t.Error("zero attribute should have no lifetime")
	}
	if !(Attribute{LifetimeAbs: time.Second}).HasLifetime() {
		t.Error("abs lifetime not detected")
	}
	if !(Attribute{LifetimeRel: "c"}).HasLifetime() {
		t.Error("rel lifetime not detected")
	}
}

func TestDefault(t *testing.T) {
	d := Default()
	if d.Replica != 1 || d.FaultTolerant || d.HasLifetime() {
		t.Errorf("Default() = %+v", d)
	}
}

func TestStringContainsLanguageKeyword(t *testing.T) {
	s := (Attribute{Name: "a", Replica: 2}).String()
	if !strings.HasPrefix(s, "attr a = {") {
		t.Errorf("String() = %q", s)
	}
}
