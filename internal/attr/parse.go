package attr

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"
)

// Parse parses one attribute definition in the paper's language, e.g.
//
//	attr update = { replica = -1, oob = bittorrent, abstime = 43200 }
//	attribute Sequence = { fault tolerance = true, protocol = "http",
//	                       lifetime = Collector, replication = x }
//
// The published listings are not entirely consistent (replica / replicat /
// replication; oob / protocol; "fault tolerance" with a space), so the
// grammar is deliberately tolerant: both keywords attr and attribute are
// accepted, keys are case-insensitive and several spellings are honoured.
// Values may be integers, booleans, bare words or quoted strings.
func Parse(src string) (Attribute, error) {
	p := &parser{src: src}
	a, err := p.parseAttr()
	if err != nil {
		return Attribute{}, err
	}
	p.skipSpace()
	if !p.eof() {
		return Attribute{}, fmt.Errorf("attr: trailing input at offset %d: %q", p.pos, p.rest())
	}
	if err := a.Validate(); err != nil {
		return Attribute{}, err
	}
	return a, nil
}

// ParseAll parses a sequence of attribute definitions, as in the BLAST
// attribute file of paper §5 (Listing 3). Definitions are separated by
// whitespace or newlines; lines starting with '#' are comments.
func ParseAll(src string) ([]Attribute, error) {
	var out []Attribute
	p := &parser{src: stripComments(src)}
	for {
		p.skipSpace()
		if p.eof() {
			return out, nil
		}
		a, err := p.parseAttr()
		if err != nil {
			return nil, err
		}
		if err := a.Validate(); err != nil {
			return nil, err
		}
		out = append(out, a)
	}
}

func stripComments(src string) string {
	lines := strings.Split(src, "\n")
	for i, l := range lines {
		if idx := strings.IndexByte(l, '#'); idx >= 0 {
			lines[i] = l[:idx]
		}
	}
	return strings.Join(lines, "\n")
}

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool     { return p.pos >= len(p.src) }
func (p *parser) rest() string  { return p.src[p.pos:] }
func (p *parser) peek() byte    { return p.src[p.pos] }
func (p *parser) advance() byte { b := p.src[p.pos]; p.pos++; return b }

func (p *parser) skipSpace() {
	for !p.eof() && unicode.IsSpace(rune(p.peek())) {
		p.pos++
	}
}

func (p *parser) word() string {
	start := p.pos
	for !p.eof() {
		c := rune(p.peek())
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' || c == '.' {
			p.pos++
		} else {
			break
		}
	}
	return p.src[start:p.pos]
}

func (p *parser) expect(b byte) error {
	p.skipSpace()
	if p.eof() || p.peek() != b {
		return fmt.Errorf("attr: expected %q at offset %d (near %q)", string(b), p.pos, p.near())
	}
	p.pos++
	return nil
}

func (p *parser) near() string {
	end := p.pos + 12
	if end > len(p.src) {
		end = len(p.src)
	}
	return p.src[p.pos:end]
}

func (p *parser) parseAttr() (Attribute, error) {
	p.skipSpace()
	kw := p.word()
	var name string
	switch strings.ToLower(kw) {
	case "attr", "attribute":
		p.skipSpace()
		name = p.word()
		if name == "" {
			return Attribute{}, fmt.Errorf("attr: missing attribute name at offset %d", p.pos)
		}
	default:
		// Tolerate "Collector attribute { }" word order from Listing 3.
		p.skipSpace()
		if kw2 := p.word(); strings.EqualFold(kw2, "attribute") || strings.EqualFold(kw2, "attr") {
			name = kw
		} else {
			return Attribute{}, fmt.Errorf("attr: expected keyword attr/attribute, got %q", kw)
		}
	}
	a := Attribute{Name: name, Replica: 1}
	p.skipSpace()
	if !p.eof() && p.peek() == '=' {
		p.pos++
	}
	if err := p.expect('{'); err != nil {
		return Attribute{}, err
	}
	for {
		p.skipSpace()
		if p.eof() {
			return Attribute{}, fmt.Errorf("attr %s: unterminated attribute body", name)
		}
		if p.peek() == '}' {
			p.pos++
			return a, nil
		}
		if err := p.parsePair(&a); err != nil {
			return Attribute{}, err
		}
		p.skipSpace()
		if !p.eof() && (p.peek() == ',' || p.peek() == ';') {
			p.pos++
		}
	}
}

// parsePair consumes one "key = value" pair. Keys may contain an internal
// space ("fault tolerance"), which the word scanner cannot see, so a second
// word is consumed when the first one is "fault".
func (p *parser) parsePair(a *Attribute) error {
	p.skipSpace()
	key := strings.ToLower(p.word())
	if key == "" {
		return fmt.Errorf("attr %s: expected key near %q", a.Name, p.near())
	}
	if key == "fault" {
		p.skipSpace()
		key += " " + strings.ToLower(p.word())
	}
	if err := p.expect('='); err != nil {
		return err
	}
	val, err := p.parseValue()
	if err != nil {
		return fmt.Errorf("attr %s, key %s: %w", a.Name, key, err)
	}
	return applyPair(a, key, val)
}

// value is the dynamically-typed result of parsing one right-hand side.
type value struct {
	s      string
	i      int64
	b      bool
	isInt  bool
	isBool bool
}

func (p *parser) parseValue() (value, error) {
	p.skipSpace()
	if p.eof() {
		return value{}, fmt.Errorf("missing value")
	}
	if p.peek() == '"' || p.peek() == '\'' {
		quote := p.advance()
		start := p.pos
		for !p.eof() && p.peek() != quote {
			if p.peek() == '\\' && p.pos+1 < len(p.src) {
				p.pos++ // keep an escaped quote (or any escape) in the token
			}
			p.pos++
		}
		if p.eof() {
			return value{}, fmt.Errorf("unterminated string")
		}
		s := p.src[start:p.pos]
		p.pos++
		// Strings rendered by Attribute.String carry Go-style escapes
		// (%q); decode them so values round-trip. A backslash sequence
		// that is not a valid escape stays literal — the grammar is
		// tolerant of hand-written definitions.
		if strings.ContainsRune(s, '\\') {
			if un, err := strconv.Unquote(`"` + s + `"`); err == nil {
				s = un
			}
		}
		return value{s: s}, nil
	}
	// Bare token: possibly a signed integer, a boolean, or a word.
	start := p.pos
	if p.peek() == '-' || p.peek() == '+' {
		p.pos++
	}
	w := p.src[start:p.pos] + p.word()
	if w == "" {
		return value{}, fmt.Errorf("empty value near %q", p.near())
	}
	if n, err := strconv.ParseInt(w, 10, 64); err == nil {
		return value{s: w, i: n, isInt: true}, nil
	}
	switch strings.ToLower(w) {
	case "true", "yes", "on":
		return value{s: w, b: true, isBool: true}, nil
	case "false", "no", "off":
		return value{s: w, isBool: true}, nil
	}
	return value{s: w}, nil
}

// maxLifetimeSeconds is the largest lifetime expressible without the
// seconds-to-Duration conversion overflowing int64 nanoseconds (~292
// years). Larger values are a definition error, not a silent wrap-around
// to a bogus (possibly negative) lifetime.
const maxLifetimeSeconds = int64(1<<63-1) / int64(time.Second)

// secondsToDuration converts a lifetime in seconds, rejecting values the
// Duration type cannot represent.
func secondsToDuration(name string, secs int64) (time.Duration, error) {
	if secs < 0 {
		return 0, fmt.Errorf("attr %s: negative lifetime %d", name, secs)
	}
	if secs > maxLifetimeSeconds {
		return 0, fmt.Errorf("attr %s: lifetime %d s overflows (max %d s, ~292 years)", name, secs, maxLifetimeSeconds)
	}
	return time.Duration(secs) * time.Second, nil
}

func applyPair(a *Attribute, key string, v value) error {
	switch key {
	case "replica", "replicat", "replication", "replicas":
		if !v.isInt {
			return fmt.Errorf("attr %s: replica wants an integer, got %q", a.Name, v.s)
		}
		a.Replica = int(v.i)
	case "fault tolerance", "faulttolerance", "fault_tolerance", "ft", "resilient":
		if !v.isBool {
			return fmt.Errorf("attr %s: fault tolerance wants a boolean, got %q", a.Name, v.s)
		}
		a.FaultTolerant = v.b
	case "abstime", "absolute", "ttl":
		if !v.isInt {
			return fmt.Errorf("attr %s: abstime wants seconds as an integer, got %q", a.Name, v.s)
		}
		d, err := secondsToDuration(a.Name, v.i)
		if err != nil {
			return err
		}
		a.LifetimeAbs = d
	case "lifetime", "reltime":
		// An integer is an absolute duration in seconds; a name is a
		// relative lifetime bound to another datum.
		if v.isInt {
			d, err := secondsToDuration(a.Name, v.i)
			if err != nil {
				return err
			}
			a.LifetimeAbs = d
		} else {
			a.LifetimeRel = v.s
		}
	case "affinity", "placement":
		a.Affinity = v.s
	case "oob", "protocol", "transfer", "transfer_protocol":
		a.Protocol = strings.ToLower(v.s)
	case "pinned", "pin":
		if !v.isBool {
			return fmt.Errorf("attr %s: pinned wants a boolean, got %q", a.Name, v.s)
		}
		a.Pinned = v.b
	default:
		return fmt.Errorf("attr %s: unknown attribute key %q", a.Name, key)
	}
	return nil
}
