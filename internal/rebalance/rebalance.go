// Package rebalance grows and shrinks the sharded D* service plane under
// live traffic: an AddShard/DrainShard protocol that streams the moving
// key ranges — catalog rows, scheduler entries, repository content — to
// their new home while the old shard keeps serving, then cuts ownership
// over atomically per range and epoch-bumps the membership table.
//
// The protocol composes two things the plane already has. dht.Placement is
// growth-monotone (n → n+1 moves keys only onto the new shard), so
// dht.Diff computes the exact moving arcs from the old and new placements
// alone. db.FeedStore already turns a shard's store into an ordered
// snapshot+tail mutation stream (PR 9's replication shipper); rebalance
// reuses it to ship exactly the rows whose key hashes into a moving arc.
//
// Three phases, driven per source shard by a coordinator
// (runtime.ShardedContainer for in-process planes, `bitdew ring add/drain`
// for live ones):
//
//   - Stage: compute this shard's outbound moves from Diff(old, new), cut
//     an atomic snapshot+subscription of the feed, and Install the moving
//     rows on their targets — content bytes ride inline with locator rows,
//     whose hosts are rewritten to the target's own endpoints. The source
//     keeps serving; writes landing during the push are drained from the
//     subscription tail. Installed rows stay INVISIBLE on the target until
//     commit: its ownership guard hides keys it does not yet own.
//   - Cutover: engage the departure gate (moving keys now answer
//     repl.ErrNotOwner — refused before execution, so clients retry them
//     on the new owner), then drain the subscription to the feed's current
//     sequence number. Because the gate precedes the barrier, no moving-key
//     mutation can follow it: the target is exactly caught up.
//   - Commit: adopt the new placement and epoch, clear the gate, persist
//     the state, garbage-collect rows that no longer home here, and
//     publish the new membership table (OnCommit). Clients notice the
//     epoch bump via the ring table, rebuild their shard set, and flush
//     their locator caches.
//
// Moved repository content is deliberately NOT deleted from the source's
// backend: a client still fetching through a pre-bump cached locator reads
// the old copy byte-exact, which is what makes scale-out invisible to
// readers. Scheduler entries moved away stay in the source's in-memory Θ
// behind the gate (sync rounds answer non-committal Keeps) until the
// commit-time GC unschedules them — workers never observe a Drop for a
// datum that merely changed shards.
//
// Replicated planes (R > 1) rebalance through repl's ownership protocol,
// not this one: Stage refuses when the container replicates.
package rebalance

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"bitdew/internal/db"
	"bitdew/internal/dht"
	"bitdew/internal/repl"
	"bitdew/internal/rpc"
)

// ServiceName is the rpc service the rebalancing protocol is served under.
const ServiceName = "rebal"

// tableState persists the committed membership epoch and shard count, so a
// restarted shard recovers the post-rebalance placement instead of the one
// it was first booted with.
const (
	tableState = "rebal_state"
	stateKey   = "membership"
)

const (
	// stageBuffer is the feed subscription depth for a migration; writes
	// landing while the snapshot pushes must fit or the stage fails
	// (db.ErrFeedLost) and is re-run.
	stageBuffer = 8192
	// installBatchMax bounds rows per Install frame; installBytesMax bounds
	// the inline content riding along, so big payloads chunk into several
	// frames instead of one giant one.
	installBatchMax = 256
	installBytesMax = 4 << 20
	// stageCallTimeout bounds each Install round trip (content rides
	// inline, so this is generous).
	stageCallTimeout = 30 * time.Second
	// cutoverDrainTimeout bounds the cutover's drain-to-barrier: the tail
	// is already buffered locally when the barrier is read, so this only
	// guards against a wedged target.
	cutoverDrainTimeout = 60 * time.Second
)

// Config wires a rebalance node into its container.
type Config struct {
	// Self is this container's shard index; Shards the plane's shard count
	// at boot. A persisted state row from an earlier rebalance overrides
	// Shards at construction.
	Self   int
	Shards int
	// Feed is the live meta store, feed-wrapped: every service write flows
	// through it (and through Guard), and migrations snapshot+follow it.
	// The node writes incoming rows directly to it, beneath the guard.
	Feed *db.FeedStore
	// Tables are the UID-keyed catalog tables that migrate and that Guard
	// gates (catalog data + locators).
	Tables []string
	// SchedulerTable is the UID-keyed scheduler persistence table; its rows
	// migrate through AdoptScheduler/DropScheduler so the target's
	// in-memory scheduler state is rebuilt too.
	SchedulerTable string
	// ContentTable is the table whose rows carry locator lists (catalog
	// locators): migrating one ships the datum's repository content inline
	// and rewrites source-endpoint hosts to this shard's own.
	ContentTable string
	// Endpoints returns this shard's protocol → host:port repository
	// endpoints (for locator rewriting on both ends of a move).
	Endpoints func() map[string]string
	// GetContent / PutContent / HasContent bridge to the repository
	// backend.
	GetContent func(uid string) ([]byte, error)
	PutContent func(uid string, content []byte) error
	HasContent func(uid string) bool
	// AdoptScheduler installs migrated scheduler rows as live state;
	// DropScheduler unschedules a datum that moved away (ghost-tolerant).
	AdoptScheduler func(rows map[string][]byte) error
	DropScheduler  func(uid string) error
	// OnCommit, when set, observes every committed membership change —
	// the runtime publishes it through the ring table.
	OnCommit func(epoch uint64, addrs []string)
	// DialOpts, when set, contributes extra dial options for outbound
	// connections (fault-injection hook).
	DialOpts func(addr string) []rpc.DialOption
	// Logf, when set, receives rebalance life-cycle events.
	Logf func(format string, args ...any)
}

// Node is one shard's rebalancing endpoint: it serves the ownership guard
// in steady state, stages and cuts over outbound migrations as a source,
// and installs inbound rows as a target. Mount it on the container's Mux.
type Node struct {
	cfg      Config
	gated    map[string]bool // guard-gated tables (catalog)
	migrated map[string]bool // feed-filtered tables (catalog + scheduler)

	mu       sync.Mutex
	epoch    uint64
	place    *dht.Placement
	departed []dht.Range // cutover→commit window: moving arcs refuse with ErrNotOwner
	pending  *migration
	stopped  bool
}

type persistedState struct {
	Epoch  uint64
	Shards int
}

// NewNode builds the rebalance node, recovering a previously committed
// epoch and shard count from the store when present.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("rebalance: plane of %d shards", cfg.Shards)
	}
	if cfg.Self < 0 || cfg.Self >= cfg.Shards {
		return nil, fmt.Errorf("rebalance: shard %d outside plane of %d", cfg.Self, cfg.Shards)
	}
	if cfg.Feed == nil {
		return nil, fmt.Errorf("rebalance: nil feed store")
	}
	n := &Node{
		cfg:      cfg,
		gated:    make(map[string]bool, len(cfg.Tables)),
		migrated: make(map[string]bool, len(cfg.Tables)+1),
		epoch:    1,
		place:    dht.NewPlacement(cfg.Shards),
	}
	for _, t := range cfg.Tables {
		n.gated[t] = true
		n.migrated[t] = true
	}
	if cfg.SchedulerTable != "" {
		n.migrated[cfg.SchedulerTable] = true
	}
	if raw, ok, err := cfg.Feed.Get(tableState, stateKey); err == nil && ok {
		var st persistedState
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&st); err == nil && st.Epoch > n.epoch && st.Shards >= 1 {
			if st.Shards != cfg.Shards {
				n.logf("rebalance: shard %d: recovered epoch %d places over %d shards, boot said %d — trusting the recovered state",
					cfg.Self, st.Epoch, st.Shards, cfg.Shards)
			}
			n.epoch = st.Epoch
			n.place = dht.NewPlacement(st.Shards)
		}
	}
	return n, nil
}

// Epoch returns the committed membership epoch (1 for a never-rebalanced
// plane).
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// Shards returns the committed placement's shard count.
func (n *Node) Shards() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.place.Shards()
}

// Stop aborts any staged migration and releases its connections.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	n.mu.Unlock()
	n.Abort()
}

// GateKey is the per-key ownership gate: nil when key currently homes on
// this shard AND is not mid-departure, repl.ErrNotOwner otherwise — the
// same refused-before-executed contract clients already retry on.
func (n *Node) GateKey(key string) error {
	id := dht.HashID(key)
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, r := range n.departed {
		if r.Contains(id) {
			return fmt.Errorf("%w: key %q departed this shard (epoch %d rebalance)", repl.ErrNotOwner, key, n.epoch)
		}
	}
	if owner := n.place.ShardOf(key); owner != n.cfg.Self {
		return fmt.Errorf("%w: key %q homes on shard %d (epoch %d)", repl.ErrNotOwner, key, owner, n.epoch)
	}
	return nil
}

// servesKey is GateKey as a boolean, for table walks.
func (n *Node) servesKey(key string) bool { return n.GateKey(key) == nil }

// guardStore enforces the ownership gate over the UID-keyed catalog
// tables: point operations on a key this shard does not (or no longer)
// own are refused with ErrNotOwner before touching state, and table walks
// skip unowned rows — which is what keeps rows installed by an inbound
// migration invisible until its commit, and ghost rows invisible after
// one.
type guardStore struct {
	db.Store
	n *Node
}

// Guard wraps the live store with the ownership gate. Tables not listed in
// cfg.Tables pass through untouched.
func (n *Node) Guard(inner db.Store) db.Store {
	return &guardStore{Store: inner, n: n}
}

func (g *guardStore) Put(table, key string, value []byte) error {
	if g.n.gated[table] {
		if err := g.n.GateKey(key); err != nil {
			return err
		}
	}
	return g.Store.Put(table, key, value)
}

func (g *guardStore) Get(table, key string) ([]byte, bool, error) {
	if g.n.gated[table] {
		if err := g.n.GateKey(key); err != nil {
			return nil, false, err
		}
	}
	return g.Store.Get(table, key)
}

func (g *guardStore) Delete(table, key string) error {
	if g.n.gated[table] {
		if err := g.n.GateKey(key); err != nil {
			return err
		}
	}
	return g.Store.Delete(table, key)
}

func (g *guardStore) Keys(table string) ([]string, error) {
	keys, err := g.Store.Keys(table)
	if err != nil || !g.n.gated[table] {
		return keys, err
	}
	kept := keys[:0]
	for _, k := range keys {
		if g.n.servesKey(k) {
			kept = append(kept, k)
		}
	}
	return kept, nil
}

func (g *guardStore) Scan(table string, fn func(key string, value []byte) bool) error {
	if !g.n.gated[table] {
		return g.Store.Scan(table, fn)
	}
	return g.Store.Scan(table, func(k string, v []byte) bool {
		if !g.n.servesKey(k) {
			return true
		}
		return fn(k, v)
	})
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

// dialOpts assembles the dial options for an outbound connection to addr.
func (n *Node) dialOpts(addr string, timeout time.Duration) []rpc.DialOption {
	opts := []rpc.DialOption{rpc.WithCallTimeout(timeout)}
	if n.cfg.DialOpts != nil {
		opts = append(opts, n.cfg.DialOpts(addr)...)
	}
	return opts
}

func (n *Node) persistState(epoch uint64, shards int) {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(persistedState{Epoch: epoch, Shards: shards}); err != nil {
		n.logf("rebalance: shard %d: encoding state: %v", n.cfg.Self, err)
		return
	}
	// Through Inner: membership state is local bookkeeping, not a row that
	// should ever enter a migration stream.
	if err := n.cfg.Feed.Inner().Put(tableState, stateKey, b.Bytes()); err != nil {
		n.logf("rebalance: shard %d: persisting state: %v", n.cfg.Self, err)
	}
}
