package rebalance

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"bitdew/internal/data"
	"bitdew/internal/rpc"
)

// MoveRow is one migrated row on the wire: a live-table mutation plus,
// for locator rows, the datum's repository content riding inline.
type MoveRow struct {
	Op         byte // 'P' put, 'D' delete
	Table      string
	Key        string
	Value      []byte
	Content    []byte
	HasContent bool
}

// InstallArgs ships a batch of moving rows to their new home. Endpoints
// carries the SOURCE shard's protocol → host:port repository endpoints so
// the target can rewrite locator hosts to its own.
type InstallArgs struct {
	Source    int
	Endpoints map[string]string
	Rows      []MoveRow
}

// InstallReply acknowledges how many rows applied.
type InstallReply struct {
	Applied int
}

// StageArgs proposes a membership change: the full new address list in
// placement order.
type StageArgs struct {
	NewAddrs []string
}

// StageReply reports the staged outbound move count.
type StageReply struct {
	Arcs    int
	Targets int
}

// CutoverArgs flips ownership of the staged arcs.
type CutoverArgs struct{}

// CutoverReply is empty; success is the answer.
type CutoverReply struct{}

// AbortArgs cancels a staged migration.
type AbortArgs struct{}

// AbortReply is empty.
type AbortReply struct{}

// CommitArgs adopts a committed membership on any shard.
type CommitArgs struct {
	Epoch uint64
	Addrs []string
}

// CommitReply is empty.
type CommitReply struct{}

// StatusArgs asks a shard's rebalance state.
type StatusArgs struct{}

// StatusReply reports it.
type StatusReply struct {
	Self    int
	Epoch   uint64
	Shards  int
	Staging bool
}

// Mount registers the rebalance protocol on the container's Mux.
func (n *Node) Mount(m *rpc.Mux) {
	rpc.Register(m, ServiceName, "Stage", func(a StageArgs) (StageReply, error) {
		if err := n.Stage(a.NewAddrs); err != nil {
			return StageReply{}, err
		}
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.pending == nil {
			return StageReply{}, nil
		}
		return StageReply{Arcs: len(n.pending.moves), Targets: len(n.pending.targets)}, nil
	})
	rpc.Register(m, ServiceName, "Cutover", func(CutoverArgs) (CutoverReply, error) {
		return CutoverReply{}, n.Cutover()
	})
	rpc.Register(m, ServiceName, "Abort", func(AbortArgs) (AbortReply, error) {
		n.Abort()
		return AbortReply{}, nil
	})
	rpc.Register(m, ServiceName, "Commit", func(a CommitArgs) (CommitReply, error) {
		return CommitReply{}, n.Commit(a.Epoch, a.Addrs)
	})
	rpc.Register(m, ServiceName, "Install", n.handleInstall)
	rpc.Register(m, ServiceName, "Status", func(StatusArgs) (StatusReply, error) {
		n.mu.Lock()
		defer n.mu.Unlock()
		return StatusReply{
			Self:    n.cfg.Self,
			Epoch:   n.epoch,
			Shards:  n.place.Shards(),
			Staging: n.pending != nil,
		}, nil
	})
}

// handleInstall applies migrated rows beneath this shard's guard: the rows
// belong to keys the shard does not own YET, so they go straight through
// the feed (and stay hidden behind the guard until the commit flips
// ownership). Install is put-overwrite idempotent — sources re-run failed
// stages freely.
func (n *Node) handleInstall(a InstallArgs) (InstallReply, error) {
	applied := 0
	for _, row := range a.Rows {
		if err := n.applyRow(a.Endpoints, row); err != nil {
			return InstallReply{Applied: applied}, fmt.Errorf("rebalance: installing %s/%s from shard %d: %w",
				row.Table, row.Key, a.Source, err)
		}
		applied++
	}
	return InstallReply{Applied: applied}, nil
}

func (n *Node) applyRow(srcEndpoints map[string]string, row MoveRow) error {
	switch {
	case row.Table == n.cfg.SchedulerTable:
		if row.Op == 'D' {
			if n.cfg.DropScheduler != nil {
				// Ghost-tolerant: the datum may never have been installed
				// here (deleted at the source between snapshot and tail).
				_ = n.cfg.DropScheduler(row.Key)
			}
			return nil
		}
		if n.cfg.AdoptScheduler == nil {
			return nil
		}
		return n.cfg.AdoptScheduler(map[string][]byte{row.Key: row.Value})
	case row.Op == 'D':
		return n.cfg.Feed.Delete(row.Table, row.Key)
	case row.Table == n.cfg.ContentTable:
		if row.HasContent && n.cfg.PutContent != nil {
			if err := n.cfg.PutContent(row.Key, row.Content); err != nil {
				return err
			}
		}
		return n.cfg.Feed.Put(row.Table, row.Key, n.rewriteLocators(srcEndpoints, row.Value))
	default:
		return n.cfg.Feed.Put(row.Table, row.Key, row.Value)
	}
}

// rewriteLocators re-homes a migrated locator row: locators whose host was
// the source shard's repository endpoint for a protocol now carry this
// shard's own endpoint, so post-commit fetches land where the content now
// lives. Locators pointing at worker hosts (peer copies) pass through
// untouched — those copies did not move.
func (n *Node) rewriteLocators(srcEndpoints map[string]string, raw []byte) []byte {
	if len(srcEndpoints) == 0 || n.cfg.Endpoints == nil {
		return raw
	}
	own := n.cfg.Endpoints()
	if len(own) == 0 {
		return raw
	}
	var locs []data.Locator
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&locs); err != nil {
		return raw // not a locator list; ship verbatim
	}
	changed := false
	for i := range locs {
		if locs[i].Host == "" || srcEndpoints[locs[i].Protocol] != locs[i].Host {
			continue
		}
		if ownAddr, ok := own[locs[i].Protocol]; ok && ownAddr != locs[i].Host {
			locs[i].Host = ownAddr
			changed = true
		}
	}
	if !changed {
		return raw
	}
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(locs); err != nil {
		return raw
	}
	return b.Bytes()
}

// Client drives a remote shard's rebalance protocol (the `bitdew ring
// add`/`drain` subcommands).
type Client struct {
	c rpc.Client
}

// NewClient wraps an rpc connection to a shard.
func NewClient(c rpc.Client) *Client { return &Client{c: c} }

// Stage proposes the membership change on the shard.
func (cl *Client) Stage(newAddrs []string) (StageReply, error) {
	var rep StageReply
	err := cl.c.Call(ServiceName, "Stage", StageArgs{NewAddrs: newAddrs}, &rep)
	return rep, err
}

// Cutover flips ownership of the staged arcs on the shard.
func (cl *Client) Cutover() error {
	var rep CutoverReply
	return cl.c.Call(ServiceName, "Cutover", CutoverArgs{}, &rep)
}

// Abort cancels the shard's staged migration.
func (cl *Client) Abort() error {
	var rep AbortReply
	return cl.c.Call(ServiceName, "Abort", AbortArgs{}, &rep)
}

// Commit adopts the committed membership on the shard.
func (cl *Client) Commit(epoch uint64, addrs []string) error {
	var rep CommitReply
	return cl.c.Call(ServiceName, "Commit", CommitArgs{Epoch: epoch, Addrs: addrs}, &rep)
}

// Status reports the shard's rebalance state.
func (cl *Client) Status() (StatusReply, error) {
	var rep StatusReply
	err := cl.c.Call(ServiceName, "Status", StatusArgs{}, &rep)
	return rep, err
}
