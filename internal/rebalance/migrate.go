package rebalance

import (
	"fmt"
	"time"

	"bitdew/internal/db"
	"bitdew/internal/dht"
	"bitdew/internal/rpc"
)

// migration is one staged outbound move: this shard's arcs that change
// owner under the proposed membership, the targets receiving them, and the
// feed subscription tracking writes that land while it is in flight.
type migration struct {
	newAddrs  []string
	moves     []dht.Move
	targets   map[int]*target
	endpoints map[string]string // this (source) shard's endpoints at stage time
	feed      *db.Feed
	lastSeq   uint64 // highest feed sequence forwarded (snapshot watermark at stage)
}

type target struct {
	shard  int
	addr   string
	client rpc.Client
}

// movesFor filters a placement diff down to the arcs leaving shard self.
func movesFor(diff []dht.Move, self int) []dht.Move {
	var out []dht.Move
	for _, mv := range diff {
		if mv.From == self {
			out = append(out, mv)
		}
	}
	return out
}

// Stage prepares this shard's side of a membership change to newAddrs:
// computes the outbound moves, snapshots the feed, and installs every
// moving row on its target while the shard keeps serving. On success the
// migration stays staged (the feed subscription keeps accumulating the
// write tail) until Cutover or Abort. One migration may be staged at a
// time.
func (n *Node) Stage(newAddrs []string) error {
	if len(newAddrs) < 1 {
		return fmt.Errorf("rebalance: staging an empty membership")
	}
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return fmt.Errorf("rebalance: shard %d is stopped", n.cfg.Self)
	}
	if n.pending != nil {
		n.mu.Unlock()
		return fmt.Errorf("rebalance: shard %d already staging a migration (abort it first)", n.cfg.Self)
	}
	oldPlace := n.place
	m := &migration{newAddrs: append([]string(nil), newAddrs...)}
	n.pending = m // reserve; all rpc below happens outside the lock
	n.mu.Unlock()

	ok := false
	defer func() {
		if !ok {
			n.Abort()
		}
	}()

	m.moves = movesFor(dht.Diff(oldPlace, dht.NewPlacement(len(newAddrs))), n.cfg.Self)
	m.targets = make(map[int]*target)
	for _, mv := range m.moves {
		if mv.To < 0 || mv.To >= len(newAddrs) {
			return fmt.Errorf("rebalance: move targets shard %d outside membership of %d", mv.To, len(newAddrs))
		}
		if m.targets[mv.To] == nil {
			t := &target{shard: mv.To, addr: newAddrs[mv.To]}
			t.client = rpc.DialAutoLazy(t.addr, n.dialOpts(t.addr, stageCallTimeout)...)
			m.targets[mv.To] = t
		}
	}
	if n.cfg.Endpoints != nil {
		m.endpoints = n.cfg.Endpoints()
	}

	seq, snap, feed, err := n.cfg.Feed.SnapshotAndFollow(stageBuffer)
	if err != nil {
		return fmt.Errorf("rebalance: shard %d snapshotting: %w", n.cfg.Self, err)
	}
	m.feed = feed
	m.lastSeq = seq

	batches := make(map[int][]MoveRow)
	moved := 0
	for _, mut := range snap {
		row, tgt, moving := n.moveRowFor(m, mut)
		if !moving {
			continue
		}
		batches[tgt] = append(batches[tgt], row)
		moved++
	}
	for tgt, rows := range batches {
		if err := n.install(m, tgt, rows); err != nil {
			return err
		}
	}
	// Forward whatever the feed buffered while the snapshot pushed.
	if err := n.drainFeed(m, 0); err != nil {
		return err
	}
	n.logf("rebalance: shard %d staged %d→%d: %d arcs, %d rows to %d targets",
		n.cfg.Self, oldPlace.Shards(), len(newAddrs), len(m.moves), moved, len(m.targets))
	ok = true
	return nil
}

// Cutover flips ownership of the staged arcs: the departure gate engages
// (moving keys refuse with ErrNotOwner from here on), then the write tail
// is drained to the feed's current sequence number. Because the gate
// precedes the barrier read, no mutation of a moving key can be assigned a
// sequence after the barrier — once the barrier is forwarded, the targets
// hold every moving row. On error the caller should Abort (the gate
// disengages and the source resumes serving the arcs).
func (n *Node) Cutover() error {
	n.mu.Lock()
	m := n.pending
	if m == nil {
		n.mu.Unlock()
		return fmt.Errorf("rebalance: shard %d has no staged migration", n.cfg.Self)
	}
	for _, mv := range m.moves {
		n.departed = append(n.departed, mv.Range)
	}
	n.mu.Unlock()

	barrier := n.cfg.Feed.Seq()
	if err := n.drainFeed(m, barrier); err != nil {
		return err
	}
	n.cfg.Feed.Unsubscribe(m.feed)
	n.logf("rebalance: shard %d cut over %d arcs at seq %d", n.cfg.Self, len(m.moves), barrier)
	return nil
}

// Abort cancels a staged migration: the departure gate disengages, the
// feed subscription is dropped and target connections close. Rows already
// installed on targets are left behind — invisible behind the targets'
// own guards, overwritten by a re-stage, garbage-collected at their next
// commit.
func (n *Node) Abort() {
	n.mu.Lock()
	m := n.pending
	n.pending = nil
	n.departed = nil
	n.mu.Unlock()
	if m == nil {
		return
	}
	if m.feed != nil {
		n.cfg.Feed.Unsubscribe(m.feed)
	}
	for _, t := range m.targets {
		if t.client != nil {
			t.client.Close()
		}
	}
}

// Commit adopts a committed membership: the new placement and epoch become
// live, the departure gate clears, the state persists, and rows that no
// longer home here are garbage-collected. Commit is what a coordinator
// calls on EVERY shard — sources, targets and bystanders — after all
// cutovers succeeded; re-committing an already-adopted epoch is a no-op.
func (n *Node) Commit(epoch uint64, addrs []string) error {
	if len(addrs) < 1 {
		return fmt.Errorf("rebalance: committing an empty membership")
	}
	n.mu.Lock()
	if epoch < n.epoch || (epoch == n.epoch && n.place.Shards() == len(addrs)) {
		n.mu.Unlock()
		if epoch < n.epoch {
			return fmt.Errorf("rebalance: shard %d at epoch %d refuses commit of older epoch %d", n.cfg.Self, n.epoch, epoch)
		}
		return nil
	}
	m := n.pending
	n.pending = nil
	n.departed = nil
	n.epoch = epoch
	n.place = dht.NewPlacement(len(addrs))
	place := n.place
	n.mu.Unlock()

	if m != nil {
		if m.feed != nil {
			n.cfg.Feed.Unsubscribe(m.feed)
		}
		for _, t := range m.targets {
			if t.client != nil {
				t.client.Close()
			}
		}
	}
	n.persistState(epoch, len(addrs))
	n.collectGhosts(place)
	n.logf("rebalance: shard %d committed epoch %d over %d shards", n.cfg.Self, epoch, len(addrs))
	if n.cfg.OnCommit != nil {
		n.cfg.OnCommit(epoch, append([]string(nil), addrs...))
	}
	return nil
}

// collectGhosts deletes rows whose key no longer homes on this shard under
// the committed placement: the rows a cutover moved away, plus any remnant
// of an aborted stage. Scheduler rows unschedule through the scheduler so
// its in-memory Θ stays coherent with the persisted table. Repository
// content is deliberately kept — stale cached locators keep reading the
// old copy until every client has healed onto the new epoch.
func (n *Node) collectGhosts(place *dht.Placement) {
	for table := range n.migrated {
		keys, err := n.cfg.Feed.Keys(table)
		if err != nil {
			n.logf("rebalance: shard %d: listing %s: %v", n.cfg.Self, table, err)
			continue
		}
		for _, k := range keys {
			if place.ShardOf(k) == n.cfg.Self {
				continue
			}
			if table == n.cfg.SchedulerTable && n.cfg.DropScheduler != nil {
				if err := n.cfg.DropScheduler(k); err == nil {
					continue // unschedule persisted the row deletion itself
				}
			}
			if err := n.cfg.Feed.Delete(table, k); err != nil {
				n.logf("rebalance: shard %d: dropping ghost %s/%s: %v", n.cfg.Self, table, k, err)
			}
		}
	}
}

// moveRowFor maps one feed mutation to its migration row and target, or
// reports it not moving. Locator rows carry the datum's repository content
// inline when this shard holds it.
func (n *Node) moveRowFor(m *migration, mut db.Mutation) (MoveRow, int, bool) {
	if !n.migrated[mut.Table] {
		return MoveRow{}, 0, false
	}
	for _, mv := range m.moves {
		if !mv.Range.ContainsKey(mut.Key) {
			continue
		}
		row := MoveRow{Op: mut.Op, Table: mut.Table, Key: mut.Key, Value: mut.Value}
		if mut.Op == 'P' && mut.Table == n.cfg.ContentTable && n.cfg.GetContent != nil {
			if n.cfg.HasContent == nil || n.cfg.HasContent(mut.Key) {
				if content, err := n.cfg.GetContent(mut.Key); err == nil {
					row.Content = content
					row.HasContent = true
				}
			}
		}
		return row, mv.To, true
	}
	return MoveRow{}, 0, false
}

// install ships rows to one target in bounded frames. Install is
// put-overwrite idempotent on the target, so a failed stage can simply be
// re-run.
func (n *Node) install(m *migration, tgt int, rows []MoveRow) error {
	t := m.targets[tgt]
	if t == nil {
		return fmt.Errorf("rebalance: shard %d has no staged target %d", n.cfg.Self, tgt)
	}
	for len(rows) > 0 {
		count, bytes := 0, 0
		for count < len(rows) && count < installBatchMax && bytes < installBytesMax {
			bytes += len(rows[count].Value) + len(rows[count].Content)
			count++
		}
		args := InstallArgs{Source: n.cfg.Self, Endpoints: m.endpoints, Rows: rows[:count]}
		var rep InstallReply
		if err := t.client.Call(ServiceName, "Install", args, &rep); err != nil {
			return fmt.Errorf("rebalance: shard %d installing %d rows on shard %d (%s): %w",
				n.cfg.Self, count, tgt, t.addr, err)
		}
		rows = rows[count:]
	}
	return nil
}

// drainFeed forwards buffered tail mutations to their targets. With
// barrier == 0 it drains until the channel is momentarily empty (stage's
// catch-up); with a barrier it blocks until every mutation at or below the
// barrier has been forwarded, bounded by cutoverDrainTimeout. A closed
// subscription (overflow) fails the migration — the caller aborts and
// re-stages.
func (n *Node) drainFeed(m *migration, barrier uint64) error {
	if m.feed == nil {
		return fmt.Errorf("rebalance: shard %d migration has no feed", n.cfg.Self)
	}
	batches := make(map[int][]MoveRow)
	flush := func() error {
		for tgt, rows := range batches {
			if err := n.install(m, tgt, rows); err != nil {
				return err
			}
			delete(batches, tgt)
		}
		return nil
	}
	forward := func(mut db.Mutation, ok bool) error {
		if !ok {
			return fmt.Errorf("rebalance: shard %d migration feed lost (%v) — re-stage", n.cfg.Self, m.feed.Err())
		}
		m.lastSeq = mut.Seq
		if row, tgt, moving := n.moveRowFor(m, mut); moving {
			batches[tgt] = append(batches[tgt], row)
		}
		return nil
	}
	timer := time.NewTimer(cutoverDrainTimeout)
	defer timer.Stop()
	for {
		if barrier > 0 {
			if m.lastSeq >= barrier {
				return flush()
			}
			// Every mutation at or below the barrier was broadcast into this
			// buffered subscription before the barrier was read, so this
			// blocking receive always has a bounded wait; the timer only
			// guards a logic bug from becoming a hang.
			select {
			case mut, ok := <-m.feed.C():
				if err := forward(mut, ok); err != nil {
					return err
				}
			case <-timer.C:
				return fmt.Errorf("rebalance: shard %d drain stuck at seq %d short of barrier %d after %v",
					n.cfg.Self, m.lastSeq, barrier, cutoverDrainTimeout)
			}
			continue
		}
		select {
		case mut, ok := <-m.feed.C():
			if err := forward(mut, ok); err != nil {
				return err
			}
		default:
			return flush()
		}
	}
}
