// Package simnet is a discrete-event, flow-level network simulator. It
// stands in for the physical testbeds of the paper's evaluation —
// Grid'5000 clusters and the DSL-Lab broadband platform — which cannot be
// reserved here. Bulk transfers are modelled as fluid flows sharing link
// bandwidth under max-min fairness, the standard abstraction for
// completion-time studies of large transfers: it preserves exactly the
// relationships the paper's figures report (who finishes first, how
// completion time scales with node count and file size, where protocol
// crossovers fall) without packet-level detail.
//
// Each node has an uplink and a downlink capacity. A flow from A to B is
// constrained by its share of A's uplink and B's downlink; rates are
// recomputed by progressive filling whenever the flow set changes. Virtual
// time advances from event to event, so simulating a thousand-second
// experiment costs microseconds of wall clock.
package simnet

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Node is one simulated host.
type Node struct {
	Name string
	// UpBps and DownBps are link capacities in bytes per second.
	UpBps, DownBps float64
	// Alive is false after FailNode.
	Alive bool
}

// Flow is one bulk transfer in progress.
type Flow struct {
	ID        int
	Src, Dst  string
	remaining float64
	rate      float64
	// onDone fires at completion with the completion timestamp.
	onDone func(at float64)
	// onFail fires if an endpoint dies first.
	onFail   func(at float64)
	finished bool
	failed   bool
}

// Remaining returns the bytes left to transfer.
func (f *Flow) Remaining() float64 { return f.remaining }

// Rate returns the current fair-share rate in bytes/s.
func (f *Flow) Rate() float64 { return f.rate }

// event is one scheduled occurrence.
type event struct {
	at   float64
	seq  int // tiebreaker for deterministic ordering
	fire func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() *event  { return h[0] }
func (s *Sim) push(e *event)      { heap.Push(&s.events, e) }
func (s *Sim) pop() *event        { return heap.Pop(&s.events).(*event) }

// Sim is one simulation run. Not safe for concurrent use: drive it from a
// single goroutine (runs are deterministic and fast).
type Sim struct {
	now    float64
	seq    int
	events eventHeap
	nodes  map[string]*Node
	flows  map[int]*Flow
	nextID int

	// version invalidates queued next-completion events when rates change.
	version int
	// lastProgress is the time flows were last advanced.
	lastProgress float64
}

// New returns an empty simulation at time zero.
func New() *Sim {
	return &Sim{nodes: make(map[string]*Node), flows: make(map[int]*Flow)}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// AddNode registers a host with the given up/down capacities (bytes/s).
func (s *Sim) AddNode(name string, upBps, downBps float64) *Node {
	n := &Node{Name: name, UpBps: upBps, DownBps: downBps, Alive: true}
	s.nodes[name] = n
	return n
}

// Node returns a registered node (nil if unknown).
func (s *Sim) Node(name string) *Node { return s.nodes[name] }

// At schedules fn at absolute virtual time t (>= now).
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.push(&event{at: t, seq: s.seq, fire: fn})
}

// After schedules fn dt seconds from now.
func (s *Sim) After(dt float64, fn func()) { s.At(s.now+dt, fn) }

// StartFlow begins a transfer of size bytes from src to dst. onDone fires
// at completion; onFail (optional) fires if an endpoint dies first.
func (s *Sim) StartFlow(src, dst string, size float64, onDone func(at float64)) *Flow {
	return s.StartFlowF(src, dst, size, onDone, nil)
}

// StartFlowF is StartFlow with a failure callback.
func (s *Sim) StartFlowF(src, dst string, size float64, onDone, onFail func(at float64)) *Flow {
	if size <= 0 {
		f := &Flow{Src: src, Dst: dst, finished: true}
		if onDone != nil {
			done := onDone
			s.After(0, func() { done(s.now) })
		}
		return f
	}
	s.nextID++
	f := &Flow{ID: s.nextID, Src: src, Dst: dst, remaining: size, onDone: onDone, onFail: onFail}
	sn, dn := s.nodes[src], s.nodes[dst]
	if sn == nil || dn == nil || !sn.Alive || !dn.Alive {
		f.failed = true
		if onFail != nil {
			fail := onFail
			s.After(0, func() { fail(s.now) })
		}
		return f
	}
	s.flows[f.ID] = f
	s.reshape()
	return f
}

// CancelFlow aborts a flow without firing callbacks.
func (s *Sim) CancelFlow(f *Flow) {
	if _, ok := s.flows[f.ID]; ok {
		delete(s.flows, f.ID)
		f.failed = true
		s.reshape()
	}
}

// FailNode kills a host: all flows touching it fail immediately.
func (s *Sim) FailNode(name string) {
	n := s.nodes[name]
	if n == nil || !n.Alive {
		return
	}
	n.Alive = false
	var dead []*Flow
	for _, f := range s.flows {
		if f.Src == name || f.Dst == name {
			dead = append(dead, f)
		}
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i].ID < dead[j].ID })
	for _, f := range dead {
		delete(s.flows, f.ID)
		f.failed = true
		if f.onFail != nil {
			fail := f.onFail
			s.After(0, func() { fail(s.now) })
		}
	}
	s.reshape()
}

// ReviveNode brings a failed host back (fresh arrival in churn scenarios).
func (s *Sim) ReviveNode(name string) {
	if n := s.nodes[name]; n != nil {
		n.Alive = true
	}
}

// reshape recomputes max-min fair rates and schedules the next completion.
func (s *Sim) reshape() {
	s.progressTo(s.now) // account for bytes moved at the old rates
	s.version++

	// Progressive filling. Each node contributes two "links": its uplink
	// shared by outgoing flows and its downlink shared by incoming flows.
	type link struct {
		capacity float64
		flows    []*Flow
	}
	links := make(map[string]*link)
	addFlow := func(key string, capacity float64, f *Flow) {
		l := links[key]
		if l == nil {
			l = &link{capacity: capacity}
			links[key] = l
		}
		l.flows = append(l.flows, f)
	}
	active := make([]*Flow, 0, len(s.flows))
	for _, f := range s.flows {
		active = append(active, f)
	}
	sort.Slice(active, func(i, j int) bool { return active[i].ID < active[j].ID })
	for _, f := range active {
		f.rate = -1 // unassigned
		addFlow("up:"+f.Src, s.nodes[f.Src].UpBps, f)
		addFlow("down:"+f.Dst, s.nodes[f.Dst].DownBps, f)
	}
	unassigned := len(active)
	for unassigned > 0 {
		// Find the bottleneck link: smallest fair share among links with
		// unassigned flows.
		bottleneckShare := math.Inf(1)
		var bottleneckKeys []string
		for key, l := range links {
			n := 0
			for _, f := range l.flows {
				if f.rate < 0 {
					n++
				}
			}
			if n == 0 {
				continue
			}
			share := l.capacity / float64(n)
			if share < bottleneckShare-1e-12 {
				bottleneckShare = share
				bottleneckKeys = bottleneckKeys[:0]
				bottleneckKeys = append(bottleneckKeys, key)
			} else if share <= bottleneckShare+1e-12 {
				bottleneckKeys = append(bottleneckKeys, key)
			}
		}
		if math.IsInf(bottleneckShare, 1) {
			break
		}
		sort.Strings(bottleneckKeys)
		// Fix every unassigned flow on the bottleneck links at the share,
		// then subtract their consumption from their other links.
		for _, key := range bottleneckKeys {
			for _, f := range links[key].flows {
				if f.rate >= 0 {
					continue
				}
				f.rate = bottleneckShare
				unassigned--
				for _, other := range []string{"up:" + f.Src, "down:" + f.Dst} {
					if other == key {
						continue
					}
					if l := links[other]; l != nil {
						l.capacity -= bottleneckShare
						if l.capacity < 0 {
							l.capacity = 0
						}
					}
				}
			}
			links[key].capacity = 0
		}
	}
	s.scheduleNextCompletion()
}

// progressTo advances every active flow's remaining bytes to time t.
func (s *Sim) progressTo(t float64) {
	dt := t - s.lastProgress
	if dt > 0 {
		for _, f := range s.flows {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
	}
	s.lastProgress = t
}

// scheduleNextCompletion queues an event at the earliest projected flow
// completion, tagged with the current version so stale events are ignored.
func (s *Sim) scheduleNextCompletion() {
	next := math.Inf(1)
	for _, f := range s.flows {
		if f.rate > 0 {
			if t := s.now + f.remaining/f.rate; t < next {
				next = t
			}
		}
	}
	if math.IsInf(next, 1) {
		return
	}
	version := s.version
	s.seq++
	s.push(&event{at: next, seq: s.seq, fire: func() {
		if version != s.version {
			return // rates changed since this was scheduled
		}
		s.completeDue()
	}})
}

// completeDue finishes every flow whose remaining bytes reach zero now. A
// flow also completes when its residue is too small for virtual time to
// advance any further (float64 granularity at the current timestamp) —
// without this, a sub-microbyte residue would re-schedule a completion
// event at an identical timestamp forever.
func (s *Sim) completeDue() {
	s.progressTo(s.now)
	var done []*Flow
	for _, f := range s.flows {
		if f.remaining <= 1e-6 || (f.rate > 0 && s.now+f.remaining/f.rate <= s.now) {
			done = append(done, f)
		}
	}
	sort.Slice(done, func(i, j int) bool { return done[i].ID < done[j].ID })
	for _, f := range done {
		delete(s.flows, f.ID)
		f.finished = true
		f.remaining = 0
	}
	for _, f := range done {
		if f.onDone != nil {
			f.onDone(s.now)
		}
	}
	s.reshape()
}

// Run processes events until none remain, returning the final time.
func (s *Sim) Run() float64 {
	for len(s.events) > 0 {
		e := s.pop()
		if e.at > s.now {
			s.progressTo(e.at)
			s.now = e.at
		}
		e.fire()
	}
	return s.now
}

// RunUntil processes events up to time t, then stops (remaining events
// stay queued).
func (s *Sim) RunUntil(t float64) {
	for len(s.events) > 0 && s.events.peek().at <= t {
		e := s.pop()
		if e.at > s.now {
			s.progressTo(e.at)
			s.now = e.at
		}
		e.fire()
	}
	if t > s.now {
		s.progressTo(t)
		s.now = t
	}
}

// ActiveFlows reports the number of flows currently moving bytes.
func (s *Sim) ActiveFlows() int { return len(s.flows) }

// String summarises the simulation state.
func (s *Sim) String() string {
	return fmt.Sprintf("simnet{t=%.3fs nodes=%d flows=%d}", s.now, len(s.nodes), len(s.flows))
}
