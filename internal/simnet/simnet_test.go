package simnet

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

const mb = 1e6

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleFlow(t *testing.T) {
	s := New()
	s.AddNode("a", 10*mb, 10*mb)
	s.AddNode("b", 10*mb, 10*mb)
	var doneAt float64 = -1
	s.StartFlow("a", "b", 100*mb, func(at float64) { doneAt = at })
	s.Run()
	// 100 MB over a 10 MB/s path: 10 s.
	if !almost(doneAt, 10, 1e-6) {
		t.Errorf("doneAt = %v, want 10", doneAt)
	}
}

func TestDownlinkBottleneck(t *testing.T) {
	s := New()
	s.AddNode("a", 100*mb, 100*mb)
	s.AddNode("b", 100*mb, 5*mb)
	var doneAt float64
	s.StartFlow("a", "b", 50*mb, func(at float64) { doneAt = at })
	s.Run()
	if !almost(doneAt, 10, 1e-6) {
		t.Errorf("doneAt = %v, want 10 (downlink-bound)", doneAt)
	}
}

func TestUplinkSharedFairly(t *testing.T) {
	// One server, two receivers: server uplink 10 MB/s shared 5/5; equal
	// sizes finish together at t = size/5.
	s := New()
	s.AddNode("srv", 10*mb, 10*mb)
	s.AddNode("r1", 100*mb, 100*mb)
	s.AddNode("r2", 100*mb, 100*mb)
	var t1, t2 float64
	s.StartFlow("srv", "r1", 50*mb, func(at float64) { t1 = at })
	s.StartFlow("srv", "r2", 50*mb, func(at float64) { t2 = at })
	s.Run()
	if !almost(t1, 10, 1e-6) || !almost(t2, 10, 1e-6) {
		t.Errorf("t1=%v t2=%v, want 10", t1, t2)
	}
}

func TestRateRecomputedOnCompletion(t *testing.T) {
	// Two flows share 10 MB/s; the small one finishes at t=2 (10MB at
	// 5MB/s), after which the big one runs at full rate:
	// big: 2s at 5 + remaining 40MB at 10 => t = 2 + 4 = 6.
	s := New()
	s.AddNode("srv", 10*mb, 10*mb)
	s.AddNode("r1", 100*mb, 100*mb)
	s.AddNode("r2", 100*mb, 100*mb)
	var tSmall, tBig float64
	s.StartFlow("srv", "r1", 10*mb, func(at float64) { tSmall = at })
	s.StartFlow("srv", "r2", 50*mb, func(at float64) { tBig = at })
	s.Run()
	if !almost(tSmall, 2, 1e-6) {
		t.Errorf("tSmall = %v, want 2", tSmall)
	}
	if !almost(tBig, 6, 1e-6) {
		t.Errorf("tBig = %v, want 6", tBig)
	}
}

func TestMaxMinAsymmetric(t *testing.T) {
	// Server uplink 9; r1 downlink 3 (bottlenecked), r2 downlink 100.
	// Max-min: r1 gets 3, r2 gets the remaining 6.
	s := New()
	s.AddNode("srv", 9*mb, 9*mb)
	s.AddNode("r1", 100*mb, 3*mb)
	s.AddNode("r2", 100*mb, 100*mb)
	var t1, t2 float64
	s.StartFlow("srv", "r1", 30*mb, func(at float64) { t1 = at })
	s.StartFlow("srv", "r2", 60*mb, func(at float64) { t2 = at })
	s.Run()
	if !almost(t1, 10, 1e-3) {
		t.Errorf("t1 = %v, want 10 (3 MB/s)", t1)
	}
	if !almost(t2, 10, 1e-3) {
		t.Errorf("t2 = %v, want 10 (6 MB/s)", t2)
	}
}

func TestTimers(t *testing.T) {
	s := New()
	var order []string
	s.At(5, func() { order = append(order, "b") })
	s.At(1, func() { order = append(order, "a") })
	s.After(7, func() { order = append(order, "c") })
	end := s.Run()
	if !almost(end, 7, 1e-9) {
		t.Errorf("end = %v", end)
	}
	if fmt.Sprint(order) != "[a b c]" {
		t.Errorf("order = %v", order)
	}
}

func TestDeferredFlowStart(t *testing.T) {
	// A flow started at t=5 via a timer completes at 5 + size/rate.
	s := New()
	s.AddNode("a", 10*mb, 10*mb)
	s.AddNode("b", 10*mb, 10*mb)
	var doneAt float64
	s.At(5, func() {
		s.StartFlow("a", "b", 20*mb, func(at float64) { doneAt = at })
	})
	s.Run()
	if !almost(doneAt, 7, 1e-6) {
		t.Errorf("doneAt = %v, want 7", doneAt)
	}
}

func TestNodeFailureKillsFlows(t *testing.T) {
	s := New()
	s.AddNode("a", 10*mb, 10*mb)
	s.AddNode("b", 10*mb, 10*mb)
	failed := false
	finished := false
	s.StartFlowF("a", "b", 100*mb, func(float64) { finished = true }, func(float64) { failed = true })
	s.At(3, func() { s.FailNode("b") })
	s.Run()
	if finished || !failed {
		t.Errorf("finished=%v failed=%v, want failure only", finished, failed)
	}
}

func TestFailureFreesBandwidth(t *testing.T) {
	// Two receivers share 10 MB/s; r2 dies at t=2; r1 then gets the full
	// uplink: 10MB at 5 by t=2 (50MB left of 60) wait:
	// r1 size 60: 2s at 5 => 50 left, then 10 MB/s => done at 7.
	s := New()
	s.AddNode("srv", 10*mb, 10*mb)
	s.AddNode("r1", 100*mb, 100*mb)
	s.AddNode("r2", 100*mb, 100*mb)
	var t1 float64
	s.StartFlow("srv", "r1", 60*mb, func(at float64) { t1 = at })
	s.StartFlowF("srv", "r2", 500*mb, nil, func(float64) {})
	s.At(2, func() { s.FailNode("r2") })
	s.Run()
	if !almost(t1, 7, 1e-6) {
		t.Errorf("t1 = %v, want 7", t1)
	}
}

func TestFlowToDeadNodeFailsImmediately(t *testing.T) {
	s := New()
	s.AddNode("a", mb, mb)
	s.AddNode("b", mb, mb)
	s.FailNode("b")
	failed := false
	s.StartFlowF("a", "b", mb, nil, func(float64) { failed = true })
	s.Run()
	if !failed {
		t.Error("flow to dead node did not fail")
	}
}

func TestZeroSizeFlowCompletesImmediately(t *testing.T) {
	s := New()
	s.AddNode("a", mb, mb)
	s.AddNode("b", mb, mb)
	done := false
	s.StartFlow("a", "b", 0, func(float64) { done = true })
	s.Run()
	if !done {
		t.Error("zero-size flow never completed")
	}
}

func TestCancelFlow(t *testing.T) {
	s := New()
	s.AddNode("a", mb, mb)
	s.AddNode("b", mb, mb)
	called := false
	f := s.StartFlow("a", "b", 10*mb, func(float64) { called = true })
	s.At(1, func() { s.CancelFlow(f) })
	s.Run()
	if called {
		t.Error("cancelled flow fired onDone")
	}
}

func TestReviveNode(t *testing.T) {
	s := New()
	s.AddNode("a", mb, mb)
	s.AddNode("b", mb, mb)
	s.FailNode("b")
	s.ReviveNode("b")
	done := false
	s.StartFlow("a", "b", mb, func(float64) { done = true })
	s.Run()
	if !done {
		t.Error("flow to revived node did not complete")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	s.AddNode("a", 10*mb, 10*mb)
	s.AddNode("b", 10*mb, 10*mb)
	f := s.StartFlow("a", "b", 100*mb, nil)
	s.RunUntil(4)
	if !almost(s.Now(), 4, 1e-9) {
		t.Errorf("Now = %v", s.Now())
	}
	if !almost(f.Remaining(), 60*mb, 1) {
		t.Errorf("Remaining = %v, want 60MB", f.Remaining())
	}
}

// TestQuickCapacityConservation: total allocated rate out of a node never
// exceeds its uplink, and per-flow rate never exceeds the receiver downlink.
func TestQuickCapacityConservation(t *testing.T) {
	f := func(nReceivers uint8, upSeed, downSeed uint16) bool {
		n := int(nReceivers)%20 + 1
		up := float64(upSeed%100) + 1
		down := float64(downSeed%50) + 1
		s := New()
		s.AddNode("srv", up*mb, up*mb)
		for i := 0; i < n; i++ {
			s.AddNode(fmt.Sprintf("r%d", i), 100*mb, down*mb)
		}
		var flows []*Flow
		for i := 0; i < n; i++ {
			flows = append(flows, s.StartFlow("srv", fmt.Sprintf("r%d", i), 1000*mb, nil))
		}
		totalRate := 0.0
		for _, fl := range flows {
			if fl.Rate() > down*mb+1 {
				return false
			}
			totalRate += fl.Rate()
		}
		if totalRate > up*mb+1 {
			return false
		}
		// Bottleneck saturation: the binding constraint is fully used.
		expected := math.Min(up*mb, float64(n)*down*mb)
		return almost(totalRate, expected, expected*1e-9+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickCompletionTimeMatchesAnalytic checks n equal flows from one
// server complete at n*size/uplink when the uplink is the bottleneck.
func TestQuickCompletionTimeMatchesAnalytic(t *testing.T) {
	f := func(nSeed uint8, sizeSeed uint16) bool {
		n := int(nSeed)%10 + 1
		size := (float64(sizeSeed%100) + 1) * mb
		s := New()
		s.AddNode("srv", 10*mb, 10*mb)
		var last float64
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("r%d", i)
			s.AddNode(name, 1000*mb, 1000*mb)
			s.StartFlow("srv", name, size, func(at float64) { last = at })
		}
		s.Run()
		want := float64(n) * size / (10 * mb)
		return almost(last, want, want*1e-6+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	s := New()
	if s.String() == "" {
		t.Error("empty String()")
	}
}
