// Command bitdew is the command-line tool of the BitDew runtime (the
// "Command-line Tool" box of the paper's Figure 1): put and get files in
// the data space, attach attributes, and inspect the system.
//
// Usage:
//
//	bitdew -service HOST:PORT put <file> [attr-definition]
//	bitdew -service HOST:PORT get <name> <outfile>
//	bitdew -service HOST:PORT ls
//	bitdew -service HOST:PORT schedule <name> <attr-definition>
//	bitdew -service HOST:PORT delete <name>
//	bitdew -service HOST:PORT status
//	bitdew -service HOST:PORT,HOST:PORT where <name>
//	bitdew -service HOST:PORT ring
//	bitdew -service HOST:PORT,HOST:PORT repl [wait]
//
// Example:
//
//	bitdew put genome.tar.gz 'attr Genebase = { replica = -1, oob = bittorrent }'
//
// Against a sharded service plane, pass every shard's address to -service
// as a comma-separated list in membership order (the same list the shards
// were started with): data then route to their home shards exactly as the
// runtime does. `where` prints a datum's home shard, `ring` prints the
// membership table a shard serves.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"bitdew/internal/attr"
	"bitdew/internal/core"
	"bitdew/internal/repl"
	"bitdew/internal/rpc"
	"bitdew/internal/runtime"
)

func main() {
	service := flag.String("service", "127.0.0.1:4567", "service rpc address(es); comma-separate a sharded plane's membership")
	host := flag.String("host", "bitdew-cli", "client host identity")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	addrs := core.ParseMembership(*service)
	if len(addrs) == 0 {
		log.Fatalf("-service %q names no address", *service)
	}
	if args[0] == "ring" {
		cmdRing(addrs[0])
		return
	}
	if args[0] == "repl" {
		cmdRepl(addrs, args[1:])
		return
	}

	var shardOpts []core.ShardOption
	if len(addrs) > 1 {
		// A replicated plane advertises R in its membership table; route
		// around dead shards the same way the runtime's clients do.
		shardOpts = append(shardOpts, core.WithReplicas(runtime.DiscoverReplicas(addrs)))
	}
	set, err := core.ConnectSharded(addrs, shardOpts...)
	if err != nil {
		log.Fatalf("connecting to %s: %v", *service, err)
	}
	defer set.Close()
	node, err := core.NewNode(core.NodeConfig{Host: *host, Shards: set})
	if err != nil {
		log.Fatal(err)
	}
	node.SetClientOnly(true)

	switch args[0] {
	case "put":
		cmdPut(node, args[1:])
	case "get":
		cmdGet(node, args[1:])
	case "ls":
		cmdLs(node)
	case "schedule":
		cmdSchedule(node, args[1:])
	case "delete":
		cmdDelete(node, args[1:])
	case "status":
		cmdStatus(node)
	case "where":
		cmdWhere(node, set, addrs, args[1:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bitdew [-service addr[,addr...]] put|get|ls|schedule|delete|status|where|ring|repl ...")
	os.Exit(2)
}

// cmdWhere prints the home shard of a datum — the one service container
// holding its catalog entry, locators, placements and permanent copy.
func cmdWhere(node *core.Node, set *core.ShardSet, addrs []string, args []string) {
	if len(args) != 1 {
		log.Fatal("where: want <name>")
	}
	d, err := node.BitDew.SearchDataFirst(args[0])
	if err != nil {
		log.Fatal(err)
	}
	shard := set.ShardOf(d.UID)
	fmt.Printf("%s %s shard %d of %d %s\n", d.Name, d.UID, shard, set.N(), addrs[shard])
}

// cmdRing fetches and prints the membership table one shard serves.
func cmdRing(addr string) {
	c, err := rpc.DialAuto(addr, rpc.WithCallTimeout(10*time.Second))
	if err != nil {
		log.Fatalf("connecting to %s: %v", addr, err)
	}
	defer c.Close()
	table, err := runtime.Members(c)
	if err != nil {
		log.Fatalf("membership of %s: %v (is it part of a sharded plane?)", addr, err)
	}
	for i, a := range table.Addrs {
		marker := " "
		if i == table.Self {
			marker = "*"
		}
		fmt.Printf("%s shard %d  %s\n", marker, i, a)
	}
}

// cmdRepl prints each shard's replication status — owned ranges, stream
// position, and how far each ship target has acknowledged. `repl wait`
// blocks until every live shard's outbound streams are fully acknowledged
// with no outstanding content pulls: the convergence barrier scripts use
// before killing a shard (the CI failover smoke relies on it).
func cmdRepl(addrs []string, args []string) {
	wait := len(args) == 1 && args[0] == "wait"
	if len(args) > 1 || (len(args) == 1 && !wait) {
		log.Fatal("repl: want no argument, or `wait`")
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		statuses := make([]*repl.StatusReply, len(addrs))
		for i, addr := range addrs {
			c, err := rpc.Dial(addr, rpc.WithCallTimeout(5*time.Second))
			if err != nil {
				continue // down: printed as such below
			}
			var rep repl.StatusReply
			if err := c.Call(repl.ServiceName, "Status", repl.StatusArgs{}, &rep); err == nil {
				statuses[i] = &rep
			}
			c.Close()
		}
		converged := true
		for _, st := range statuses {
			if st == nil {
				continue // a dead shard cannot lag; its successor serves
			}
			for _, tgt := range st.Targets {
				if !tgt.Synced || tgt.Acked < st.Seq || tgt.PendingContent > 0 {
					converged = false
				}
			}
		}
		if !wait || converged {
			for i, st := range statuses {
				if st == nil {
					fmt.Printf("shard %d  %s  down\n", i, addrs[i])
					continue
				}
				ranges := make([]string, 0, len(st.Serving))
				for r, epoch := range st.Serving {
					ranges = append(ranges, fmt.Sprintf("%d:%d", r, epoch))
				}
				sort.Strings(ranges)
				fmt.Printf("shard %d  %s  epoch %d  seq %d  serves [%s]\n",
					i, addrs[i], st.Epoch, st.Seq, strings.Join(ranges, " "))
				for _, tgt := range st.Targets {
					state := "lagging"
					if tgt.Synced && tgt.Acked >= st.Seq && tgt.PendingContent == 0 {
						state = "synced"
					}
					fmt.Printf("  -> %s  acked %d  pending-content %d  %s\n",
						tgt.Addr, tgt.Acked, tgt.PendingContent, state)
				}
			}
			if !converged {
				os.Exit(1)
			}
			return
		}
		if time.Now().After(deadline) {
			log.Fatal("repl wait: streams still lagging after 60s")
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func cmdPut(node *core.Node, args []string) {
	if len(args) < 1 {
		log.Fatal("put: missing file")
	}
	d, err := node.BitDew.CreateDataFromFile(args[0])
	if err != nil {
		log.Fatal(err)
	}
	content, err := os.ReadFile(args[0])
	if err != nil {
		log.Fatal(err)
	}
	if err := node.BitDew.Put(d, content); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("put %s\n", d)
	if len(args) >= 2 {
		a, err := attr.Parse(args[1])
		if err != nil {
			log.Fatalf("attribute: %v", err)
		}
		if err := node.ActiveData.Schedule(*d, a); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scheduled with %s\n", a)
	}
}

func cmdGet(node *core.Node, args []string) {
	if len(args) != 2 {
		log.Fatal("get: want <name> <outfile>")
	}
	d, err := node.BitDew.SearchDataFirst(args[0])
	if err != nil {
		log.Fatal(err)
	}
	if err := node.BitDew.GetFile(d, args[1]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("got %s -> %s (%d bytes)\n", d.Name, args[1], d.Size)
}

func cmdLs(node *core.Node) {
	ds, err := node.BitDew.AllData()
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range ds {
		fmt.Printf("%-36s %-24s %12d  %s\n", d.UID, d.Name, d.Size, d.Checksum)
	}
	fmt.Printf("%d data in the space\n", len(ds))
}

func cmdSchedule(node *core.Node, args []string) {
	if len(args) != 2 {
		log.Fatal("schedule: want <name> <attr-definition>")
	}
	d, err := node.BitDew.SearchDataFirst(args[0])
	if err != nil {
		log.Fatal(err)
	}
	a, err := attr.Parse(args[1])
	if err != nil {
		log.Fatal(err)
	}
	if err := node.ActiveData.Schedule(d, a); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled %s with %s\n", d.Name, a)
}

func cmdDelete(node *core.Node, args []string) {
	if len(args) != 1 {
		log.Fatal("delete: want <name>")
	}
	d, err := node.BitDew.SearchDataFirst(args[0])
	if err != nil {
		log.Fatal(err)
	}
	if err := node.BitDew.DeleteData(d); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted %s\n", d.Name)
}

func cmdStatus(node *core.Node) {
	ds, err := node.BitDew.AllData()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data space: %d data\n", len(ds))
	var total int64
	for _, d := range ds {
		total += d.Size
	}
	fmt.Printf("total content: %d bytes\n", total)
}
