// Command bitdew is the command-line tool of the BitDew runtime (the
// "Command-line Tool" box of the paper's Figure 1): put and get files in
// the data space, attach attributes, and inspect the system.
//
// Usage:
//
//	bitdew -service HOST:PORT put <file> [attr-definition]
//	bitdew -service HOST:PORT get <name> <outfile>
//	bitdew -service HOST:PORT ls
//	bitdew -service HOST:PORT schedule <name> <attr-definition>
//	bitdew -service HOST:PORT delete <name>
//	bitdew -service HOST:PORT status
//	bitdew -service HOST:PORT,HOST:PORT where <name>
//	bitdew -service HOST:PORT ring
//	bitdew -service HOST:PORT,HOST:PORT ring add <newaddr>
//	bitdew -service HOST:PORT,HOST:PORT ring drain
//	bitdew -service HOST:PORT,HOST:PORT repl [wait]
//
// Example:
//
//	bitdew put genome.tar.gz 'attr Genebase = { replica = -1, oob = bittorrent }'
//
// Against a sharded service plane, pass every shard's address to -service
// as a comma-separated list in membership order (the same list the shards
// were started with): data then route to their home shards exactly as the
// runtime does. `where` prints a datum's home shard, `ring` prints the
// membership table a shard serves.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"bitdew/internal/attr"
	"bitdew/internal/core"
	"bitdew/internal/rebalance"
	"bitdew/internal/repl"
	"bitdew/internal/rpc"
	"bitdew/internal/runtime"
)

func main() {
	service := flag.String("service", "127.0.0.1:4567", "service rpc address(es); comma-separate a sharded plane's membership")
	host := flag.String("host", "bitdew-cli", "client host identity")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	addrs := core.ParseMembership(*service)
	if len(addrs) == 0 {
		log.Fatalf("-service %q names no address", *service)
	}
	if args[0] == "ring" {
		cmdRing(addrs, args[1:])
		return
	}
	if args[0] == "repl" {
		cmdRepl(addrs, args[1:])
		return
	}

	var shardOpts []core.ShardOption
	if len(addrs) > 1 {
		// A replicated plane advertises R in its membership table; route
		// around dead shards the same way the runtime's clients do.
		shardOpts = append(shardOpts, core.WithReplicas(runtime.DiscoverReplicas(addrs)))
	}
	set, err := core.ConnectSharded(addrs, shardOpts...)
	if err != nil {
		log.Fatalf("connecting to %s: %v", *service, err)
	}
	defer set.Close()
	node, err := core.NewNode(core.NodeConfig{Host: *host, Shards: set})
	if err != nil {
		log.Fatal(err)
	}
	node.SetClientOnly(true)

	switch args[0] {
	case "put":
		cmdPut(node, args[1:])
	case "get":
		cmdGet(node, args[1:])
	case "ls":
		cmdLs(node)
	case "schedule":
		cmdSchedule(node, args[1:])
	case "delete":
		cmdDelete(node, args[1:])
	case "status":
		cmdStatus(node)
	case "where":
		cmdWhere(node, set, addrs, args[1:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bitdew [-service addr[,addr...]] put|get|ls|schedule|delete|status|where|ring|repl ...")
	os.Exit(2)
}

// cmdWhere prints the home shard of a datum — the one service container
// holding its catalog entry, locators, placements and permanent copy.
func cmdWhere(node *core.Node, set *core.ShardSet, addrs []string, args []string) {
	if len(args) != 1 {
		log.Fatal("where: want <name>")
	}
	d, err := node.BitDew.SearchDataFirst(args[0])
	if err != nil {
		log.Fatal(err)
	}
	shard := set.ShardOf(d.UID)
	fmt.Printf("%s %s shard %d of %d %s\n", d.Name, d.UID, shard, set.N(), addrs[shard])
}

// cmdRing inspects or reshapes the plane's membership: bare `ring` prints
// the table one shard serves; `ring add <addr>` grows the plane onto an
// already-started shard; `ring drain` retires the last shard.
func cmdRing(addrs []string, args []string) {
	switch {
	case len(args) == 0:
		printRing(addrs[0])
	case args[0] == "add" && len(args) == 2:
		cmdRingAdd(addrs, args[1])
	case args[0] == "drain" && len(args) == 1:
		cmdRingDrain(addrs)
	default:
		log.Fatal("ring: want no argument, `add <addr>`, or `drain`")
	}
}

func printRing(addr string) {
	table := fetchRing(addr)
	printTable(table)
}

func printTable(table runtime.Membership) {
	if table.Epoch > 0 {
		fmt.Printf("epoch %d\n", table.Epoch)
	}
	for i, a := range table.Addrs {
		marker := " "
		if i == table.Self {
			marker = "*"
		}
		fmt.Printf("%s shard %d  %s\n", marker, i, a)
	}
}

func fetchRing(addr string) runtime.Membership {
	c, err := rpc.DialAuto(addr, rpc.WithCallTimeout(10*time.Second))
	if err != nil {
		log.Fatalf("connecting to %s: %v", addr, err)
	}
	defer c.Close()
	table, err := runtime.Members(c)
	if err != nil {
		log.Fatalf("membership of %s: %v (is it part of a sharded plane?)", addr, err)
	}
	return table
}

// ringOpTimeout bounds each rebalance protocol call. Staging streams every
// moving row and its content, so the budget is generous.
const ringOpTimeout = 10 * time.Minute

// elasticRing fetches the membership table and refuses planes that cannot
// rebalance (static or replicated ones).
func elasticRing(addrs []string, op string) runtime.Membership {
	table := fetchRing(addrs[0])
	if table.Epoch == 0 {
		log.Fatalf("ring %s: the plane is not elastic (no membership epoch); start every shard with -shard-id/-peers and no -replicas", op)
	}
	if table.Replicas > 1 {
		log.Fatalf("ring %s: replicated planes reshape through repl, not elastic rebalancing", op)
	}
	return table
}

// cmdRingAdd grows the plane by one shard under live traffic. The new
// shard must already be running, started as shard N of the grown list:
//
//	bitdew-service -addr <newaddr> -shard-id N -peers <cur...,newaddr>
//
// The protocol stages every current shard's moving rows onto it, cuts
// ownership over, and commits the bumped epoch everywhere — clients follow
// through their membership polling; no restart anywhere.
func cmdRingAdd(addrs []string, newAddr string) {
	table := elasticRing(addrs, "add")
	cur := table.Addrs
	for _, a := range cur {
		if a == newAddr {
			log.Fatalf("ring add: %s is already shard of the plane", newAddr)
		}
	}
	newAddrs := append(append([]string(nil), cur...), newAddr)

	newClient := rebalance.NewClient(rpc.DialAutoLazy(newAddr, rpc.WithCallTimeout(ringOpTimeout)))
	st, err := newClient.Status()
	if err != nil {
		log.Fatalf("ring add: new shard %s unreachable: %v\nstart it first: bitdew-service -addr %s -shard-id %d -peers %s",
			newAddr, err, newAddr, len(cur), strings.Join(newAddrs, ","))
	}
	if st.Self != len(cur) || st.Shards != len(newAddrs) {
		log.Fatalf("ring add: %s runs as shard %d of %d; the joining shard must be started with -shard-id %d -peers %s",
			newAddr, st.Self, st.Shards, len(cur), strings.Join(newAddrs, ","))
	}

	sources := make([]*rebalance.Client, len(cur))
	for i, a := range cur {
		sources[i] = rebalance.NewClient(rpc.DialAutoLazy(a, rpc.WithCallTimeout(ringOpTimeout)))
	}
	abort := func() {
		for _, src := range sources {
			//vet:ignore errlost abort is best-effort cleanup after the failure being reported
			src.Abort()
		}
	}
	// Stage in parallel: every source streams its moving rows to the new
	// shard while continuing to serve.
	errs := make([]error, len(sources))
	var wg sync.WaitGroup
	for i, src := range sources {
		wg.Add(1)
		go func(i int, src *rebalance.Client) {
			defer wg.Done()
			if _, err := src.Stage(newAddrs); err != nil {
				errs[i] = err
			}
		}(i, src)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			abort()
			log.Fatalf("ring add: shard %d stage: %v", i, err)
		}
	}
	for i, src := range sources {
		if err := src.Cutover(); err != nil {
			abort()
			log.Fatalf("ring add: shard %d cutover: %v", i, err)
		}
	}
	epoch := table.Epoch + 1
	for i, src := range sources {
		if err := src.Commit(epoch, newAddrs); err != nil {
			log.Fatalf("ring add: shard %d commit: %v", i, err)
		}
	}
	if err := newClient.Commit(epoch, newAddrs); err != nil {
		log.Fatalf("ring add: shard %d commit: %v", len(cur), err)
	}
	fmt.Printf("added shard %d (%s) at epoch %d\n", len(cur), newAddr, epoch)
	printRing(addrs[0])
}

// cmdRingDrain retires the plane's last shard: its rows stream to the
// survivors, ownership cuts over, and the shrunk membership commits. The
// drained process is NOT stopped — it keeps answering stale reads with
// retained content and points old clients at the survivors — stop it once
// clients have converged.
func cmdRingDrain(addrs []string) {
	table := elasticRing(addrs, "drain")
	cur := table.Addrs
	n := len(cur)
	if n < 2 {
		log.Fatal("ring drain: cannot drain the last shard")
	}
	newAddrs := append([]string(nil), cur[:n-1]...)
	last := rebalance.NewClient(rpc.DialAutoLazy(cur[n-1], rpc.WithCallTimeout(ringOpTimeout)))
	if _, err := last.Stage(newAddrs); err != nil {
		//vet:ignore errlost abort is best-effort cleanup after the failure being reported
		last.Abort()
		log.Fatalf("ring drain: shard %d stage: %v", n-1, err)
	}
	if err := last.Cutover(); err != nil {
		//vet:ignore errlost abort is best-effort cleanup after the failure being reported
		last.Abort()
		log.Fatalf("ring drain: shard %d cutover: %v", n-1, err)
	}
	epoch := table.Epoch + 1
	for i := 0; i < n-1; i++ {
		src := rebalance.NewClient(rpc.DialAutoLazy(cur[i], rpc.WithCallTimeout(ringOpTimeout)))
		if err := src.Commit(epoch, newAddrs); err != nil {
			log.Fatalf("ring drain: shard %d commit: %v", i, err)
		}
	}
	if err := last.Commit(epoch, newAddrs); err != nil {
		log.Fatalf("ring drain: shard %d commit: %v", n-1, err)
	}
	fmt.Printf("drained shard %d (%s) at epoch %d; stop its process once clients converge\n", n-1, cur[n-1], epoch)
	printRing(addrs[0])
}

// cmdRepl prints each shard's replication status — owned ranges, stream
// position, and how far each ship target has acknowledged. `repl wait`
// blocks until every live shard's outbound streams are fully acknowledged
// with no outstanding content pulls: the convergence barrier scripts use
// before killing a shard (the CI failover smoke relies on it).
func cmdRepl(addrs []string, args []string) {
	wait := len(args) == 1 && args[0] == "wait"
	if len(args) > 1 || (len(args) == 1 && !wait) {
		log.Fatal("repl: want no argument, or `wait`")
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		statuses := make([]*repl.StatusReply, len(addrs))
		for i, addr := range addrs {
			c, err := rpc.Dial(addr, rpc.WithCallTimeout(5*time.Second))
			if err != nil {
				continue // down: printed as such below
			}
			var rep repl.StatusReply
			if err := c.Call(repl.ServiceName, "Status", repl.StatusArgs{}, &rep); err == nil {
				statuses[i] = &rep
			}
			c.Close()
		}
		converged := true
		for _, st := range statuses {
			if st == nil {
				continue // a dead shard cannot lag; its successor serves
			}
			for _, tgt := range st.Targets {
				if !tgt.Synced || tgt.Acked < st.Seq || tgt.PendingContent > 0 {
					converged = false
				}
			}
		}
		if !wait || converged {
			for i, st := range statuses {
				if st == nil {
					fmt.Printf("shard %d  %s  down\n", i, addrs[i])
					continue
				}
				ranges := make([]string, 0, len(st.Serving))
				for r, epoch := range st.Serving {
					ranges = append(ranges, fmt.Sprintf("%d:%d", r, epoch))
				}
				sort.Strings(ranges)
				fmt.Printf("shard %d  %s  epoch %d  seq %d  serves [%s]\n",
					i, addrs[i], st.Epoch, st.Seq, strings.Join(ranges, " "))
				for _, tgt := range st.Targets {
					state := "lagging"
					if tgt.Synced && tgt.Acked >= st.Seq && tgt.PendingContent == 0 {
						state = "synced"
					}
					fmt.Printf("  -> %s  acked %d  pending-content %d  %s\n",
						tgt.Addr, tgt.Acked, tgt.PendingContent, state)
				}
			}
			if !converged {
				os.Exit(1)
			}
			return
		}
		if time.Now().After(deadline) {
			log.Fatal("repl wait: streams still lagging after 60s")
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func cmdPut(node *core.Node, args []string) {
	if len(args) < 1 {
		log.Fatal("put: missing file")
	}
	d, err := node.BitDew.CreateDataFromFile(args[0])
	if err != nil {
		log.Fatal(err)
	}
	content, err := os.ReadFile(args[0])
	if err != nil {
		log.Fatal(err)
	}
	if err := node.BitDew.Put(d, content); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("put %s\n", d)
	if len(args) >= 2 {
		a, err := attr.Parse(args[1])
		if err != nil {
			log.Fatalf("attribute: %v", err)
		}
		if err := node.ActiveData.Schedule(*d, a); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scheduled with %s\n", a)
	}
}

func cmdGet(node *core.Node, args []string) {
	if len(args) != 2 {
		log.Fatal("get: want <name> <outfile>")
	}
	d, err := node.BitDew.SearchDataFirst(args[0])
	if err != nil {
		log.Fatal(err)
	}
	if err := node.BitDew.GetFile(d, args[1]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("got %s -> %s (%d bytes)\n", d.Name, args[1], d.Size)
}

func cmdLs(node *core.Node) {
	ds, err := node.BitDew.AllData()
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range ds {
		fmt.Printf("%-36s %-24s %12d  %s\n", d.UID, d.Name, d.Size, d.Checksum)
	}
	fmt.Printf("%d data in the space\n", len(ds))
}

func cmdSchedule(node *core.Node, args []string) {
	if len(args) != 2 {
		log.Fatal("schedule: want <name> <attr-definition>")
	}
	d, err := node.BitDew.SearchDataFirst(args[0])
	if err != nil {
		log.Fatal(err)
	}
	a, err := attr.Parse(args[1])
	if err != nil {
		log.Fatal(err)
	}
	if err := node.ActiveData.Schedule(d, a); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled %s with %s\n", d.Name, a)
}

func cmdDelete(node *core.Node, args []string) {
	if len(args) != 1 {
		log.Fatal("delete: want <name>")
	}
	d, err := node.BitDew.SearchDataFirst(args[0])
	if err != nil {
		log.Fatal(err)
	}
	if err := node.BitDew.DeleteData(d); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted %s\n", d.Name)
}

func cmdStatus(node *core.Node) {
	ds, err := node.BitDew.AllData()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data space: %d data\n", len(ds))
	var total int64
	for _, d := range ds {
		total += d.Size
	}
	fmt.Printf("total content: %d bytes\n", total)
}
