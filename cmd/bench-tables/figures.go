package main

import (
	"fmt"

	"bitdew/internal/simgrid"
	"bitdew/internal/testbed"
)

const mb = 1e6

var (
	figSizesMB = []float64{10, 20, 50, 100, 150, 200, 250, 500}
	figNodes   = []int{10, 50, 100, 250}
)

// fig3a prints completion times of the FTP vs BitTorrent sweep on the GdX
// cluster.
func fig3a(quick bool) {
	p := testbed.GdX()
	sizes, nodes := figSizesMB, figNodes
	if quick {
		sizes = []float64{10, 100, 500}
		nodes = []int{10, 250}
	}
	for _, proto := range []string{"ftp", "bittorrent"} {
		fmt.Printf("\n--- %s ---\n%8s", proto, "size\\n")
		for _, n := range nodes {
			fmt.Printf(" %9d", n)
		}
		fmt.Println()
		for _, szMB := range sizes {
			fmt.Printf("%6.0fMB", szMB)
			for _, n := range nodes {
				r, err := simgrid.Broadcast(p, proto, n, szMB*mb, nil)
				if err != nil {
					panic(err)
				}
				fmt.Printf(" %9.1f", r.Completion)
			}
			fmt.Println()
		}
	}
	fmt.Println("\n(seconds; paper: BitTorrent wins above ~20MB x ~10+ nodes and is")
	fmt.Println(" nearly flat in node count, FTP grows linearly with nodes)")
}

// overheadGrid computes BitDew-over-FTP overhead for every (size, nodes)
// cell, as a percentage when pct is true and in seconds otherwise.
func overheadGrid(pct bool, quick bool) {
	p := testbed.GdX()
	ov := simgrid.DefaultOverhead()
	sizes, nodes := figSizesMB, figNodes
	if quick {
		sizes = []float64{10, 100, 500}
		nodes = []int{10, 250}
	}
	fmt.Printf("%8s", "size\\n")
	for _, n := range nodes {
		fmt.Printf(" %9d", n)
	}
	fmt.Println()
	for _, szMB := range sizes {
		fmt.Printf("%6.0fMB", szMB)
		for _, n := range nodes {
			raw := simgrid.FTPBroadcast(p, n, szMB*mb, nil).Completion
			bd := simgrid.FTPBroadcast(p, n, szMB*mb, ov).Completion
			if pct {
				fmt.Printf(" %8.1f%%", (bd-raw)/raw*100)
			} else {
				fmt.Printf(" %9.1f", bd-raw)
			}
		}
		fmt.Println()
	}
}

func fig3b(quick bool) {
	overheadGrid(true, quick)
	fmt.Println("\n(percent of transfer time; paper: impact strongest on small files")
	fmt.Println(" distributed to few nodes, up to ~18-20%)")
}

func fig3c(quick bool) {
	overheadGrid(false, quick)
	fmt.Println("\n(seconds; paper: absolute overhead grows with file size and node")
	fmt.Println(" count — the bandwidth the BitDew protocol itself consumes)")
}

// fig4 runs the DSL-Lab fault-tolerance scenario.
func fig4(quick bool) {
	size := 4 * mb
	if quick {
		size = 1 * mb
	}
	r := simgrid.FaultScenario(testbed.DSLLab(), size, 5, 5, 20, 1.0)
	fmt.Print(r.FormatGantt())
	fmt.Println("\nreplica availability timeline (t, live replicas):")
	for _, pt := range r.ReplicaTimeline {
		fmt.Printf("  t=%6.1fs  replicas=%d\n", pt[0], int(pt[1]))
	}
	fmt.Println("\n(paper: ~3s waiting time from the failure detector (3x1s heartbeat),")
	fmt.Println(" download times spread by heterogeneous ADSL bandwidth 53-492 KB/s)")
}

// fig5 sweeps BLAST M/W workers for both protocols.
func fig5(quick bool) {
	p := testbed.GdX()
	workers := []int{10, 20, 50, 100, 150, 200, 250, 275}
	if quick {
		workers = []int{10, 50, 250}
	}
	ftp, err := simgrid.BlastSweep(p, workers, "ftp")
	if err != nil {
		panic(err)
	}
	bt, err := simgrid.BlastSweep(p, workers, "bittorrent")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%8s %12s %12s\n", "workers", "FTP", "BitTorrent")
	for i, n := range workers {
		fmt.Printf("%8d %12.0f %12.0f\n", n, ftp[i], bt[i])
	}
	fmt.Println("\n(total execution seconds, 2.68GB genebase; paper: FTP better at")
	fmt.Println(" 10-20 workers, then grows considerably while BitTorrent stays flat)")
}

// fig6 prints the per-cluster breakdown at 400 workers on Grid5000.
func fig6(quick bool) {
	p := testbed.Grid5000()
	n := 400
	if quick {
		n = 100
	}
	fmt.Printf("%-12s %10s %10s %10s %10s\n", "cluster", "proto", "transfer", "unzip", "exec")
	var rows []string
	for _, proto := range []string{"ftp", "bittorrent"} {
		r, err := simgrid.BlastRun(p, n, simgrid.DefaultBlastParams(proto))
		if err != nil {
			panic(err)
		}
		for _, cl := range r.ClusterNames() {
			b := r.ByCluster[cl]
			rows = append(rows, fmt.Sprintf("%-12s %10s %10.0f %10.0f %10.0f", cl, proto, b.Transfer, b.Unzip, b.Exec))
		}
		rows = append(rows, fmt.Sprintf("%-12s %10s %10.0f %10.0f %10.0f", "mean", proto, r.Mean.Transfer, r.Mean.Unzip, r.Mean.Exec))
	}
	for _, row := range rows {
		fmt.Println(row)
	}
	fmt.Println("\n(seconds; paper: transfer dominates, BitTorrent gains ~10x on data")
	fmt.Println(" delivery over FTP at 400 nodes; unzip and exec are protocol-independent)")
}
