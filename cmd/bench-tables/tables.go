package main

import (
	"fmt"
	"math"
	"sync"
	"time"

	"bitdew/internal/catalog"
	"bitdew/internal/data"
	"bitdew/internal/db"
	"bitdew/internal/dht"
	"bitdew/internal/rpc"
)

// sessionStore wraps an embedded store, paying a small per-operation
// session-setup cost — the work a JDO/JDBC layer does per call without a
// connection pool (statement preparation, session objects). With DBCP that
// cost is amortised; without it is paid on every operation.
type sessionStore struct {
	inner db.Store
}

func (s sessionStore) session() {
	// Allocate and initialise a session-sized scratch structure.
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	_ = buf
}

func (s sessionStore) Put(t, k string, v []byte) error { s.session(); return s.inner.Put(t, k, v) }
func (s sessionStore) Get(t, k string) ([]byte, bool, error) {
	s.session()
	return s.inner.Get(t, k)
}
func (s sessionStore) Delete(t, k string) error        { s.session(); return s.inner.Delete(t, k) }
func (s sessionStore) Keys(t string) ([]string, error) { s.session(); return s.inner.Keys(t) }
func (s sessionStore) Scan(t string, fn func(string, []byte) bool) error {
	s.session()
	return s.inner.Scan(t, fn)
}
func (s sessionStore) Close() error { return s.inner.Close() }

// measureCreates runs concurrent data-slot creation loops against a
// catalog client for d, returning thousands of creations per second.
func measureCreates(client *catalog.Client, d time.Duration, workers int) float64 {
	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	deadline := time.Now().Add(d)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := int64(0)
			for time.Now().Before(deadline) {
				dd := data.New("bench-slot")
				if err := client.Register(*dd); err != nil {
					break
				}
				n++
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}()
	}
	wg.Wait()
	return float64(total) / d.Seconds() / 1000
}

// table2 reproduces Table 2: creation rate across three transports
// (local call, rpc on loopback, rpc with injected remote latency) and two
// engine styles (networked "MySQL role" vs embedded "HsqlDB role"), each
// with and without connection pooling.
func table2(quick bool) {
	dur := 1 * time.Second
	if quick {
		dur = 250 * time.Millisecond
	}
	const workers = 8

	type engine struct {
		name  string
		store func() (db.Store, func())
	}
	engines := []engine{
		{"MySQL-like/unpooled", func() (db.Store, func()) {
			backing := db.NewRowStore()
			srv, err := db.NewServer(backing, "127.0.0.1:0")
			if err != nil {
				panic(err)
			}
			return db.NewUnpooledStore(srv.Addr()), func() { srv.Close() }
		}},
		{"MySQL-like/DBCP", func() (db.Store, func()) {
			backing := db.NewRowStore()
			srv, err := db.NewServer(backing, "127.0.0.1:0")
			if err != nil {
				panic(err)
			}
			pool := db.NewPool(srv.Addr(), workers)
			return pool, func() { pool.Close(); srv.Close() }
		}},
		{"HsqlDB-like/unpooled", func() (db.Store, func()) {
			return sessionStore{inner: db.NewRowStore()}, func() {}
		}},
		{"HsqlDB-like/DBCP", func() (db.Store, func()) {
			return db.NewRowStore(), func() {}
		}},
	}

	type transport struct {
		name   string
		client func(m *rpc.Mux) (rpc.Client, func())
	}
	transports := []transport{
		{"local", func(m *rpc.Mux) (rpc.Client, func()) {
			c := rpc.NewLocalClient(m, 0)
			return c, func() { c.Close() }
		}},
		{"RMI local", func(m *rpc.Mux) (rpc.Client, func()) {
			srv, err := rpc.Listen("127.0.0.1:0", m)
			if err != nil {
				panic(err)
			}
			//vet:ignore rpcdeadline Table 2 measures the bare transport against an in-process server; a per-call deadline timer would perturb the recorded baselines
			c, err := rpc.Dial(srv.Addr())
			if err != nil {
				panic(err)
			}
			return c, func() { c.Close(); srv.Close() }
		}},
		{"RMI remote", func(m *rpc.Mux) (rpc.Client, func()) {
			srv, err := rpc.Listen("127.0.0.1:0", m, rpc.WithServerLatency(200*time.Microsecond))
			if err != nil {
				panic(err)
			}
			//vet:ignore rpcdeadline Table 2 measures the bare transport against an in-process server; a per-call deadline timer would perturb the recorded baselines
			c, err := rpc.Dial(srv.Addr())
			if err != nil {
				panic(err)
			}
			return c, func() { c.Close(); srv.Close() }
		}},
	}

	fmt.Printf("%-12s", "")
	for _, e := range engines {
		fmt.Printf("  %-22s", e.name)
	}
	fmt.Println()
	for _, tr := range transports {
		fmt.Printf("%-12s", tr.name)
		for _, e := range engines {
			store, closeStore := e.store()
			svc := catalog.NewService(store)
			mux := rpc.NewMux()
			svc.Mount(mux)
			client, closeClient := tr.client(mux)
			rate := measureCreates(catalog.NewClient(client), dur, workers)
			closeClient()
			closeStore()
			fmt.Printf("  %-22.2f", rate)
		}
		fmt.Println()
	}
	fmt.Println("\n(thousands of data-slot creations per second; paper Table 2 shape:")
	fmt.Println(" embedded engine beats networked one, pooling rescues the networked")
	fmt.Println(" engine, and transports order local > RMI local > RMI remote)")
}

// table3 reproduces Table 3: 50 nodes each publish P (dataID, hostID)
// pairs into the Distributed Data Catalog (Chord DHT with wide-area hop
// latency) and, for comparison, into the centralized DC.
func table3(quick bool) {
	nodes, pairs := 50, 500
	hop := 200 * time.Microsecond
	if quick {
		nodes, pairs = 20, 50
	}

	// DDC: build the ring, then measure publish throughput per node.
	ring := dht.NewRing(dht.WithSeed(1), dht.WithHopDelay(hop))
	for i := 0; i < nodes; i++ {
		if _, err := ring.AddNode(fmt.Sprintf("res%03d", i)); err != nil {
			panic(err)
		}
	}
	ring.StabilizeFully()
	ddcRates := measurePublish(nodes, pairs, func(node int, k string) error {
		return ring.Put(k, fmt.Sprintf("host%03d", node))
	})

	// DC: the centralized catalog behind loopback rpc.
	svc := catalog.NewService(db.NewRowStore())
	mux := rpc.NewMux()
	svc.Mount(mux)
	srv, err := rpc.Listen("127.0.0.1:0", mux)
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	//vet:ignore rpcdeadline Table 3's DC column measures the bare loopback transport; a per-call deadline timer would perturb the recorded baselines
	conn, err := rpc.Dial(srv.Addr())
	if err != nil {
		panic(err)
	}
	defer conn.Close()
	dcClient := catalog.NewClient(conn)
	dcRates := measurePublish(nodes, pairs, func(node int, k string) error {
		return dcClient.Register(data.Data{UID: data.UID(k), Name: "replica"})
	})

	fmt.Printf("%-14s %10s %10s %10s %10s\n", "", "Min", "Max", "Sd", "Mean")
	min, max, sd, mean := stats(ddcRates)
	fmt.Printf("%-14s %10.2f %10.2f %10.2f %10.2f\n", "publish/DDC", min, max, sd, mean)
	dmin, dmax, dsd, dmean := stats(dcRates)
	fmt.Printf("%-14s %10.2f %10.2f %10.2f %10.2f\n", "publish/DC", dmin, dmax, dsd, dmean)
	fmt.Printf("\n(pairs per second per node; paper: DDC ~15x slower than DC,\n")
	fmt.Printf(" measured ratio here: %.1fx)\n", dmean/mean)
}

// measurePublish runs `nodes` concurrent publishers of `pairs` entries and
// returns each node's achieved rate (pairs/sec).
func measurePublish(nodes, pairs int, publish func(node int, key string) error) []float64 {
	rates := make([]float64, nodes)
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			start := time.Now()
			for p := 0; p < pairs; p++ {
				key := fmt.Sprintf("data-%03d-%05d", n, p)
				if err := publish(n, key); err != nil {
					return
				}
			}
			rates[n] = float64(pairs) / time.Since(start).Seconds()
		}(n)
	}
	wg.Wait()
	return rates
}

func stats(xs []float64) (min, max, sd, mean float64) {
	if len(xs) == 0 {
		return
	}
	min, max = xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	sd = math.Sqrt(sd / float64(len(xs)))
	return
}
