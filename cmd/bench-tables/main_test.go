package main

import (
	"math"
	"testing"

	"bitdew/internal/db"
)

func TestStats(t *testing.T) {
	min, max, sd, mean := stats([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if min != 2 || max != 9 || mean != 5 {
		t.Errorf("min/max/mean = %v/%v/%v", min, max, mean)
	}
	if math.Abs(sd-2) > 1e-9 {
		t.Errorf("sd = %v, want 2", sd)
	}
	if _, _, _, m := stats(nil); m != 0 {
		t.Errorf("empty stats mean = %v", m)
	}
}

func TestSessionStoreDelegates(t *testing.T) {
	s := sessionStore{inner: db.NewRowStore()}
	if err := s.Put("t", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("t", "k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	keys, err := s.Keys("t")
	if err != nil || len(keys) != 1 {
		t.Fatalf("Keys = %v %v", keys, err)
	}
	visited := 0
	s.Scan("t", func(string, []byte) bool { visited++; return true })
	if visited != 1 {
		t.Errorf("Scan visited %d", visited)
	}
	if err := s.Delete("t", "k"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHarnessSmoke exercises every table/figure generator in quick mode;
// output goes to stdout, the test asserts none of them panic.
func TestHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for name, fn := range map[string]func(bool){
		"table2": table2, "table3": table3,
		"fig3a": fig3a, "fig3b": fig3b, "fig3c": fig3c,
		"fig4": fig4, "fig5": fig5, "fig6": fig6,
	} {
		t.Run(name, func(t *testing.T) { fn(true) })
	}
}
