package main

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"bitdew/internal/db"
	"bitdew/internal/loadgen"
)

func TestStats(t *testing.T) {
	min, max, sd, mean := stats([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if min != 2 || max != 9 || mean != 5 {
		t.Errorf("min/max/mean = %v/%v/%v", min, max, mean)
	}
	if math.Abs(sd-2) > 1e-9 {
		t.Errorf("sd = %v, want 2", sd)
	}
	if _, _, _, m := stats(nil); m != 0 {
		t.Errorf("empty stats mean = %v", m)
	}
}

func TestSessionStoreDelegates(t *testing.T) {
	s := sessionStore{inner: db.NewRowStore()}
	if err := s.Put("t", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("t", "k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	keys, err := s.Keys("t")
	if err != nil || len(keys) != 1 {
		t.Fatalf("Keys = %v %v", keys, err)
	}
	visited := 0
	s.Scan("t", func(string, []byte) bool { visited++; return true })
	if visited != 1 {
		t.Errorf("Scan visited %d", visited)
	}
	if err := s.Delete("t", "k"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHarnessSmoke exercises every table/figure generator in quick mode;
// output goes to stdout, the test asserts none of them panic.
func TestHarnessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for name, fn := range map[string]func(bool){
		"table2": table2, "table3": table3,
		"fig3a": fig3a, "fig3b": fig3b, "fig3c": fig3c,
		"fig4": fig4, "fig5": fig5, "fig6": fig6,
	} {
		t.Run(name, func(t *testing.T) { fn(true) })
	}
}

// TestBenchJSONTable renders a trajectory from fixture reports and checks
// the rows come out in time order with the headline numbers present.
func TestBenchJSONTable(t *testing.T) {
	dir := t.TempDir()
	write := func(name, generatedAt string, tp float64) {
		rep := &loadgen.Report{Name: "stress", GeneratedAt: generatedAt, Throughput: tp}
		rep.Scenario.Shards = 2
		rep.Scenario.Clients = 64
		rep.Scenario.Mix = "put=2,fetch=6,schedule=1,search=1"
		rep.Scenario.Arrival = "closed"
		rep.Latency = loadgen.LatencyMS{P50: 1.5, P99: 9.25, P999: 20}
		if err := rep.WriteJSON(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	// Written out of order; the table must sort by GeneratedAt.
	write("BENCH_b.json", "2026-08-07T10:00:00Z", 4000)
	write("BENCH_a.json", "2026-08-01T10:00:00Z", 3000)

	out, err := benchJSONTable(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	first := strings.Index(out, "3000")
	second := strings.Index(out, "4000")
	if first < 0 || second < 0 || first > second {
		t.Fatalf("rows out of time order:\n%s", out)
	}
	for _, want := range []string{"ops/sec", "p999 ms", "2sh × 64cl", "9.250", "2026-08-01"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if _, err := benchJSONTable(filepath.Join(dir, "NOPE_*.json")); err == nil {
		t.Fatal("want error for a glob matching nothing")
	}
}
