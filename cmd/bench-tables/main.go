// Command bench-tables regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md's per-experiment index):
//
//	bench-tables -table 2        data-slot creation rates (real components)
//	bench-tables -table 3        DDC vs DC publish rates (real DHT)
//	bench-tables -fig 3a         FTP vs BitTorrent distribution (simgrid)
//	bench-tables -fig 3b         BitDew overhead over FTP, percent
//	bench-tables -fig 3c         BitDew overhead over FTP, seconds
//	bench-tables -fig 4          DSL-Lab fault-tolerance Gantt chart
//	bench-tables -fig 5          BLAST M/W total time vs workers
//	bench-tables -fig 6          BLAST breakdown per cluster
//	bench-tables -all            everything
//	bench-tables -bench-json 'BENCH_*.json'
//	                             sustained-load perf trajectory as markdown
//
// Tables 2 and 3 exercise the real runtime components (rpc transports,
// database engines, connection pool, Chord DHT); the figures run on the
// simulated testbeds. -quick shrinks measurement durations for CI runs.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	table := flag.String("table", "", "regenerate a table: 2 | 3")
	fig := flag.String("fig", "", "regenerate a figure: 3a | 3b | 3c | 4 | 5 | 6")
	all := flag.Bool("all", false, "regenerate everything")
	quick := flag.Bool("quick", false, "shorter measurement durations")
	benchJSON := flag.String("bench-json", "", "glob of BENCH_*.json load reports; renders the perf trajectory")
	flag.Parse()

	ran := false
	if *benchJSON != "" {
		out, err := benchJSONTable(*benchJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\n================ Sustained-load trajectory ================\n")
		fmt.Print(out)
		ran = true
	}
	run := func(name string, fn func(quick bool)) {
		fmt.Printf("\n================ %s ================\n", name)
		fn(*quick)
		ran = true
	}

	if *all || *table == "2" {
		run("Table 2: data slot creation (thousands dc/sec)", table2)
	}
	if *all || *table == "3" {
		run("Table 3: publish rate, DDC (DHT) vs DC (pairs/sec)", table3)
	}
	if *all || *fig == "3a" {
		run("Figure 3a: distribution completion time, FTP vs BitTorrent (s)", fig3a)
	}
	if *all || *fig == "3b" {
		run("Figure 3b: BitDew overhead over FTP (percent)", fig3b)
	}
	if *all || *fig == "3c" {
		run("Figure 3c: BitDew overhead over FTP (seconds)", fig3c)
	}
	if *all || *fig == "4" {
		run("Figure 4: DSL-Lab fault-tolerance scenario", fig4)
	}
	if *all || *fig == "5" {
		run("Figure 5: BLAST M/W total execution time (s)", fig5)
	}
	if *all || *fig == "6" {
		run("Figure 6: BLAST breakdown by cluster (s)", fig6)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
