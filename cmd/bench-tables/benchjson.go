package main

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"bitdew/internal/loadgen"
)

// -bench-json renders the sustained-load performance trajectory: every
// BENCH_*.json written by cmd/bitdew-stress (one per tracked change or
// scenario) becomes a row of a markdown table, oldest first, so the history
// of throughput and tail latency reads top to bottom like the paper's
// result tables read left to right.

// benchJSONTable loads every report matching the glob and renders them as
// one markdown table. Returns an error when the glob matches nothing — a
// silent empty trajectory would read as "no regressions" in CI.
func benchJSONTable(glob string) (string, error) {
	paths, err := filepath.Glob(glob)
	if err != nil {
		return "", fmt.Errorf("bench-tables: bad glob %q: %w", glob, err)
	}
	if len(paths) == 0 {
		return "", fmt.Errorf("bench-tables: no reports match %q", glob)
	}
	sort.Strings(paths)
	reports := make([]*loadgen.Report, 0, len(paths))
	for _, p := range paths {
		rep, err := loadgen.ReadReport(p)
		if err != nil {
			return "", err
		}
		reports = append(reports, rep)
	}
	// Oldest first: the trajectory reads downward through time.
	sort.SliceStable(reports, func(i, j int) bool {
		return reports[i].GeneratedAt < reports[j].GeneratedAt
	})

	var b strings.Builder
	b.WriteString("| run | date | scenario | ops/sec | errors | p50 ms | p99 ms | p999 ms |\n")
	b.WriteString("|---|---|---|---:|---:|---:|---:|---:|\n")
	for _, r := range reports {
		date := r.GeneratedAt
		if len(date) >= 10 {
			date = date[:10]
		}
		scenario := fmt.Sprintf("%dsh × %dcl, %s, %s",
			r.Scenario.Shards, r.Scenario.Clients, r.Scenario.Mix, r.Scenario.Arrival)
		fmt.Fprintf(&b, "| %s | %s | %s | %.0f | %d | %.3f | %.3f | %.3f |\n",
			r.Name, date, scenario, r.Throughput, r.Errors,
			r.Latency.P50, r.Latency.P99, r.Latency.P999)
	}
	return b.String(), nil
}
