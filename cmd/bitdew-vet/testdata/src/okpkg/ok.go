// Package okpkg carries exactly one deliberately suppressed finding, so
// the multichecker tests can pin that -json surfaces suppressions with
// their reasons instead of dropping them.
package okpkg

import "rpc"

func shipBestEffort(c rpc.Client, calls []*rpc.Call) {
	//vet:ignore errlost metrics fan-out is best-effort by design
	c.CallBatch(calls)
}
