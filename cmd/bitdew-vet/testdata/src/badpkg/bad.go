// Package badpkg violates one invariant per bitdew-vet analyzer; the
// multichecker test asserts the exact eight diagnostics.
package badpkg

import (
	"sync"
	"time"

	"rpc"
)

type Payload struct {
	Name string
	Blob any
}

type Service struct {
	mu sync.Mutex
	c  rpc.Client
}

// spliceiface: Payload reaches an interface.
func registerBad(m *rpc.Mux) {
	rpc.Register(m, "svc", "m", func(p Payload) (struct{}, error) { return struct{}{}, nil })
}

// lockheld: rpc call under the mutex.
func (s *Service) lockedCall() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.c.Call("svc", "m", nil, nil)
}

// rpcdeadline: dial site without a call timeout.
func dialBad() (rpc.Client, error) {
	return rpc.DialAuto("addr")
}

// errlost: batch shipped, outcome dropped.
func batchBad(c rpc.Client) {
	calls := []*rpc.Call{rpc.NewCall("svc", "m", nil, nil)}
	c.CallBatch(calls)
}

// leakygo: constructor goroutine with no exit.
func NewService() *Service {
	s := &Service{}
	go func() {
		for {
			_ = time.Now() // busy loop: no stop channel, no return
		}
	}()
	return s
}

// splicereach: send forwards its caller-typed parameter into the payload
// position, so forwardBad's concrete argument type is checked at the call
// site — where it reaches an interface.
func send[T any](c rpc.Client, v T) error {
	return c.Call("svc", "m", v, nil)
}

func forwardBad(c rpc.Client) {
	_ = send(c, Payload{})
}

// lockorder: abba and baab acquire the two locks in opposite orders.
var regMu sync.Mutex

func (s *Service) abba() {
	s.mu.Lock()
	regMu.Lock()
	regMu.Unlock()
	s.mu.Unlock()
}

func (s *Service) baab() {
	regMu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	regMu.Unlock()
}

// deadlineprop: the blocking call hides one helper frame deep, so only
// the propagated BlocksOnRPC fact exposes the unbounded retry loop.
func fetch(c rpc.Client) error {
	return c.Call("svc", "m", nil, nil)
}

func retryBad(c rpc.Client) {
	for {
		if fetch(c) == nil {
			return
		}
	}
}
