// Package badpkg violates one invariant per bitdew-vet analyzer; the
// multichecker test asserts the exact five diagnostics.
package badpkg

import (
	"sync"
	"time"

	"rpc"
)

type Payload struct {
	Name string
	Blob any
}

type Service struct {
	mu sync.Mutex
	c  rpc.Client
}

// spliceiface: Payload reaches an interface.
func registerBad(m *rpc.Mux) {
	rpc.Register(m, "svc", "m", func(p Payload) (struct{}, error) { return struct{}{}, nil })
}

// lockheld: rpc call under the mutex.
func (s *Service) lockedCall() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.c.Call("svc", "m", nil, nil)
}

// rpcdeadline: dial site without a call timeout.
func dialBad() (rpc.Client, error) {
	return rpc.DialAuto("addr")
}

// errlost: batch shipped, outcome dropped.
func batchBad(c rpc.Client) {
	calls := []*rpc.Call{rpc.NewCall("svc", "m", nil, nil)}
	c.CallBatch(calls)
}

// leakygo: constructor goroutine with no exit.
func NewService() *Service {
	s := &Service{}
	go func() {
		for {
			_ = time.Now() // busy loop: no stop channel, no return
		}
	}()
	return s
}
