// Package rpc is the end-to-end stub of bitdew/internal/rpc for the
// bitdew-vet multichecker test (same convention as the per-pass fixtures).
package rpc

import "time"

type Mux struct{}

type Client interface {
	Call(service, method string, args, reply any) error
	CallBatch(calls []*Call) error
	Close() error
}

type Call struct {
	Service, Method string
	Args, Reply     any
	Err             error
}

type DialOption func()

func NewCall(service, method string, args, reply any) *Call {
	return &Call{Service: service, Method: method, Args: args, Reply: reply}
}

func Register[A, R any](m *Mux, service, method string, fn func(A) (R, error)) {}

func Dial(addr string, opts ...DialOption) (Client, error)     { return nil, nil }
func DialAuto(addr string, opts ...DialOption) (Client, error) { return nil, nil }
func WithCallTimeout(d time.Duration) DialOption               { return func() {} }

func CallBatch(c Client, calls []*Call) error { return c.CallBatch(calls) }

func FirstError(calls []*Call) error {
	for _, call := range calls {
		if call.Err != nil {
			return call.Err
		}
	}
	return nil
}
