package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"bitdew/internal/analysis/vet"
)

// moduleRoot locates the repository root from this file's position.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", ".."))
}

// badFixtureOpts targets the known-bad fixture package.
func badFixtureOpts(t *testing.T) vet.Options {
	t.Helper()
	root := moduleRoot(t)
	return vet.Options{
		ModuleDir:  root,
		ExtraRoots: []string{filepath.Join(root, "cmd", "bitdew-vet", "testdata")},
	}
}

// TestMulticheckerOnBadFixture runs the full suite over the known-bad
// fixture package and asserts the exact diagnostics, one per analyzer —
// the end-to-end proof that the multichecker loads, analyzes, propagates
// facts, suppresses and reports like the CI gate does.
func TestMulticheckerOnBadFixture(t *testing.T) {
	var out bytes.Buffer
	n, err := vet.Run(badFixtureOpts(t), []string{"badpkg"}, &out)
	if err != nil {
		t.Fatalf("vet.Run: %v\noutput:\n%s", err, out.String())
	}
	if n != 8 {
		t.Fatalf("got %d diagnostics, want 8:\n%s", n, out.String())
	}
	got := out.String()
	wants := []string{
		"bad.go:24:2: spliceiface: rpc args type badpkg.Payload reaches interface-typed component at Blob",
		"bad.go:31:6: lockheld: rpc Call while holding s.mu",
		"bad.go:36:9: rpcdeadline: rpc.DialAuto without rpc.WithCallTimeout",
		"bad.go:42:2: errlost: result of CallBatch discarded",
		"bad.go:49:3: leakygo: goroutine started by a constructor loops forever with no exit",
		"bad.go:64:14: splicereach: rpc payload through badpkg.send (parameter 1): type badpkg.Payload reaches interface-typed component at Blob",
		"bad.go:72:2: lockorder: lock order cycle (potential deadlock): badpkg.Service.mu (held at ",
		"bad.go:92:6: deadlineprop: call to badpkg.fetch (blocks on rpc via fetch → rpc Call) inside an unbounded for-loop with no deadline",
	}
	for _, w := range wants {
		if !strings.Contains(got, w) {
			t.Errorf("missing diagnostic %q in output:\n%s", w, got)
		}
	}
	// Diagnostics must come out position-sorted for stable CI diffs.
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 8 {
		t.Fatalf("got %d output lines, want 8:\n%s", len(lines), got)
	}
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Errorf("output not sorted at line %d:\n%s", i, got)
		}
	}
}

// TestJSONOutput pins the -json wire form: every diagnostic with file,
// line, analyzer, message; suppressed findings included with reasons.
func TestJSONOutput(t *testing.T) {
	opts := badFixtureOpts(t)
	opts.JSON = true
	var out bytes.Buffer
	n, err := vet.Run(opts, []string{"badpkg"}, &out)
	if err != nil {
		t.Fatalf("vet.Run: %v\noutput:\n%s", err, out.String())
	}
	if n != 8 {
		t.Fatalf("got %d unsuppressed diagnostics, want 8:\n%s", n, out.String())
	}
	var diags []struct {
		File        string `json:"file"`
		Line        int    `json:"line"`
		Col         int    `json:"col"`
		Analyzer    string `json:"analyzer"`
		Message     string `json:"message"`
		Suppressed  bool   `json:"suppressed"`
		Suppression string `json:"suppression"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out.String())
	}
	if len(diags) != 8 {
		t.Fatalf("got %d JSON entries, want 8:\n%s", len(diags), out.String())
	}
	byAnalyzer := make(map[string]int)
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete JSON entry: %+v", d)
		}
		if d.Suppressed {
			t.Errorf("badpkg has no suppressions, entry claims one: %+v", d)
		}
		byAnalyzer[d.Analyzer]++
	}
	for _, a := range vet.Suite() {
		if byAnalyzer[a.Name] != 1 {
			t.Errorf("analyzer %s has %d JSON entries, want 1", a.Name, byAnalyzer[a.Name])
		}
	}
}

// TestJSONIncludesSuppressed pins that -json surfaces suppressed findings
// with their reasons instead of dropping them.
func TestJSONIncludesSuppressed(t *testing.T) {
	opts := badFixtureOpts(t)
	opts.JSON = true
	var out bytes.Buffer
	n, err := vet.Run(opts, []string{"okpkg"}, &out)
	if err != nil {
		t.Fatalf("vet.Run: %v\noutput:\n%s", err, out.String())
	}
	if n != 0 {
		t.Fatalf("suppressed findings must not count, got n=%d:\n%s", n, out.String())
	}
	var diags []struct {
		Analyzer    string `json:"analyzer"`
		Suppressed  bool   `json:"suppressed"`
		Suppression string `json:"suppression"`
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(diags) != 1 {
		t.Fatalf("got %d entries, want the 1 suppressed finding:\n%s", len(diags), out.String())
	}
	if !diags[0].Suppressed || diags[0].Analyzer != "errlost" ||
		!strings.Contains(diags[0].Suppression, "best-effort") {
		t.Errorf("suppressed entry malformed: %+v", diags[0])
	}
}

// TestGraphOutput pins the -graph DOT dump: a digraph wrapping the
// matched packages' call-graph clusters with kind-styled edges.
func TestGraphOutput(t *testing.T) {
	opts := badFixtureOpts(t)
	opts.Graph = true
	var out bytes.Buffer
	if _, err := vet.Run(opts, []string{"badpkg"}, &out); err != nil {
		t.Fatalf("vet.Run: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, w := range []string{
		"digraph bitdew {",
		`subgraph "cluster_badpkg"`,
		`"badpkg.retryBad" -> "badpkg.fetch";`,
		`"badpkg.NewService" -> "time.Now" [style=dashed,label="go"];`,
		"}",
	} {
		if !strings.Contains(got, w) {
			t.Errorf("DOT output missing %q:\n%s", w, got)
		}
	}
}

// TestSuiteCoversEightAnalyzers pins the advertised suite: CI docs and
// DESIGN.md name exactly these analyzers, in this order.
func TestSuiteCoversEightAnalyzers(t *testing.T) {
	want := []string{
		"spliceiface", "splicereach", "lockheld", "lockorder",
		"rpcdeadline", "deadlineprop", "errlost", "leakygo",
	}
	got := vet.Suite()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}

// TestWholeModuleClean is the acceptance gate run as a test: the final
// tree must be free of findings (true positives are fixed, deliberate
// drops carry documented suppressions).
func TestWholeModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	if raceEnabled {
		t.Skip("single-goroutine CPU work; under -race it only starves the parallel acceptance tests (CI runs bitdew-vet as its own step)")
	}
	root := moduleRoot(t)
	var out bytes.Buffer
	n, err := vet.Run(vet.Options{ModuleDir: root}, []string{"./..."}, &out)
	if err != nil {
		t.Fatalf("vet.Run: %v\noutput:\n%s", err, out.String())
	}
	if n != 0 {
		t.Fatalf("bitdew-vet ./... reports %d findings on the final tree:\n%s", n, out.String())
	}
}
