package main

import (
	"bytes"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"bitdew/internal/analysis/vet"
)

// moduleRoot locates the repository root from this file's position.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", ".."))
}

// TestMulticheckerOnBadFixture runs the full suite over the known-bad
// fixture package and asserts the exact diagnostics, one per analyzer —
// the end-to-end proof that the multichecker loads, analyzes, suppresses
// and reports like the CI gate does.
func TestMulticheckerOnBadFixture(t *testing.T) {
	root := moduleRoot(t)
	var out bytes.Buffer
	n, err := vet.Run(vet.Options{
		ModuleDir:  root,
		ExtraRoots: []string{filepath.Join(root, "cmd", "bitdew-vet", "testdata")},
	}, []string{"badpkg"}, &out)
	if err != nil {
		t.Fatalf("vet.Run: %v\noutput:\n%s", err, out.String())
	}
	if n != 5 {
		t.Fatalf("got %d diagnostics, want 5:\n%s", n, out.String())
	}
	got := out.String()
	wants := []string{
		"bad.go:24:2: spliceiface: rpc args type badpkg.Payload reaches interface-typed component at Blob",
		"bad.go:31:6: lockheld: rpc Call while holding s.mu",
		"bad.go:36:9: rpcdeadline: rpc.DialAuto without rpc.WithCallTimeout",
		"bad.go:42:2: errlost: result of CallBatch discarded",
		"bad.go:49:3: leakygo: goroutine started by a constructor loops forever with no exit",
	}
	for _, w := range wants {
		if !strings.Contains(got, w) {
			t.Errorf("missing diagnostic %q in output:\n%s", w, got)
		}
	}
	// Diagnostics must come out position-sorted for stable CI diffs.
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d output lines, want 5:\n%s", len(lines), got)
	}
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Errorf("output not sorted at line %d:\n%s", i, got)
		}
	}
}

// TestSuiteCoversFiveAnalyzers pins the advertised suite: CI docs and
// DESIGN.md name exactly these analyzers.
func TestSuiteCoversFiveAnalyzers(t *testing.T) {
	want := []string{"spliceiface", "lockheld", "rpcdeadline", "errlost", "leakygo"}
	got := vet.Suite()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("suite[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}

// TestWholeModuleClean is the acceptance gate run as a test: the final
// tree must be free of findings (true positives are fixed, deliberate
// drops carry documented suppressions).
func TestWholeModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	if raceEnabled {
		t.Skip("single-goroutine CPU work; under -race it only starves the parallel acceptance tests (CI runs bitdew-vet as its own step)")
	}
	root := moduleRoot(t)
	var out bytes.Buffer
	n, err := vet.Run(vet.Options{ModuleDir: root}, []string{"./..."}, &out)
	if err != nil {
		t.Fatalf("vet.Run: %v\noutput:\n%s", err, out.String())
	}
	if n != 0 {
		t.Fatalf("bitdew-vet ./... reports %d findings on the final tree:\n%s", n, out.String())
	}
}
