package main

import (
	"os"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/vet"
)

// suite and runVet isolate main from the library so main.go reads as pure
// CLI plumbing. Stock go vet is skipped in json/graph modes: its text
// output would corrupt the machine-readable stream.
func suite() []*analysis.Analyzer { return vet.Suite() }

func runVet(moduleDir string, patterns []string, stock, jsonOut, graph bool) (int, error) {
	return vet.Run(vet.Options{
		ModuleDir: moduleDir,
		Stock:     stock,
		JSON:      jsonOut,
		Graph:     graph,
	}, patterns, os.Stdout)
}
