package main

import (
	"os"

	"bitdew/internal/analysis"
	"bitdew/internal/analysis/vet"
)

// suite and runVet isolate main from the library so main.go reads as pure
// CLI plumbing.
func suite() []*analysis.Analyzer { return vet.Suite() }

func runVet(moduleDir string, patterns []string, stock bool) (int, error) {
	return vet.Run(vet.Options{ModuleDir: moduleDir, Stock: stock}, patterns, os.Stdout)
}
