//go:build race

package main

// raceEnabled reports that this build runs under the race detector. The
// whole-module analysis test skips itself there: loading and type-checking
// every package is pure single-goroutine CPU work that race instrumentation
// slows severalfold, starving the throughput acceptance tests that share
// the `go test -race ./...` run — and CI runs bitdew-vet over the module
// as its own required step anyway.
const raceEnabled = true
