// Command bitdew-vet is the project's multichecker: it runs the stock go
// vet passes plus the bitdew-specific analyzers (internal/analysis/passes)
// that encode the service plane's concurrency, wire-format and timeout
// invariants as machine-checked gates.
//
// Usage:
//
//	go run ./cmd/bitdew-vet ./...          # whole module (CI runs this)
//	go run ./cmd/bitdew-vet ./internal/rpc # one package
//	go run ./cmd/bitdew-vet -list          # describe the analyzers
//	go run ./cmd/bitdew-vet -json ./...    # machine-readable findings
//	go run ./cmd/bitdew-vet -graph ./...   # static call graph (DOT)
//
// Exit status is 1 when any diagnostic is reported. False positives are
// silenced in place with a documented suppression:
//
//	//vet:ignore <analyzer> <reason>
//
// on the flagged line or the line above it; the reason is mandatory. See
// DESIGN.md "Static analysis & invariants" for each analyzer's contract.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	nostock := flag.Bool("nostock", false, "skip the stock `go vet` passes")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (includes suppressed findings with reasons)")
	graph := flag.Bool("graph", false, "dump the static call graph of the matched packages as Graphviz DOT")
	flag.Parse()
	if err := run(*list, *nostock, *jsonOut, *graph, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

var errFindings = fmt.Errorf("bitdew-vet: diagnostics reported")

func run(list, nostock, jsonOut, graph bool, patterns []string) error {
	if list {
		for _, a := range suite() {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-12s %s\n", a.Name, doc)
		}
		return nil
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	moduleDir, err := findModuleRoot()
	if err != nil {
		return err
	}
	n, err := runVet(moduleDir, patterns, !nostock && !jsonOut && !graph, jsonOut, graph)
	if err != nil {
		return fmt.Errorf("bitdew-vet: %w", err)
	}
	if n > 0 {
		return errFindings
	}
	return nil
}

// findModuleRoot walks up from the working directory to the go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("bitdew-vet: no go.mod found above the working directory")
		}
		dir = parent
	}
}
