// Command bitdew-stress is the sustained-load harness: it simulates many
// concurrent clients issuing a configurable mix of put/fetch/schedule/search
// operations against a D* service plane — the paper's evaluation conditions
// (§5, Fig. 3: many nodes hammering the services at once) as steady-state
// traffic rather than a single wave. It reports throughput and p50/p99/p999
// latency per op class and writes a machine-readable BENCH_*.json so the
// performance trajectory is tracked across changes (render it with
// bench-tables -bench-json).
//
// Against an in-process plane (default: 2 shards booted just for the run):
//
//	bitdew-stress -shards 2 -clients 64 -duration 10s -warmup 2s
//
// Against a real deployed plane (same comma-separated membership list the
// shards were started with):
//
//	bitdew-stress -service 127.0.0.1:4601,127.0.0.1:4602 -clients 256
//
// Arrival is closed-loop by default (each client issues its next op as soon
// as the previous returns); -open -rate 5000 switches to open-loop arrival
// at 5000 ops/sec with latency measured from each op's scheduled arrival,
// so queueing delay under overload is charged to the system instead of
// being silently omitted.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"bitdew/internal/core"
	"bitdew/internal/loadgen"
	"bitdew/internal/testbed"
)

// options are the CLI flags, separated from main so tests can drive the
// same configuration path the binary runs.
type options struct {
	service      string
	shards       int
	clients      int
	conns        int
	duration     time.Duration
	warmup       time.Duration
	mix          string
	open         bool
	rate         float64
	payload      int
	preload      int
	slots        int
	seed         int64
	out          string
	failOnErrors bool
	failover     int
	replicas     int
	scaleout     bool
}

func main() {
	var o options
	flag.StringVar(&o.service, "service", "", "comma-separated shard addresses of a running plane (empty: boot an in-process plane)")
	flag.IntVar(&o.shards, "shards", 2, "shards of the in-process plane (ignored with -service)")
	flag.IntVar(&o.clients, "clients", 64, "concurrent simulated clients")
	flag.IntVar(&o.conns, "conns", 8, "shared service connections the clients multiplex over")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "measured window")
	flag.DurationVar(&o.warmup, "warmup", 2*time.Second, "unmeasured warmup before the window")
	flag.StringVar(&o.mix, "mix", loadgen.DefaultMix().String(), "op mix weights")
	flag.BoolVar(&o.open, "open", false, "open-loop arrival (fixed schedule) instead of closed-loop")
	flag.Float64Var(&o.rate, "rate", 0, "open-loop arrival rate in ops/sec across all clients")
	flag.IntVar(&o.payload, "payload", 256, "payload bytes per put / preloaded datum")
	flag.IntVar(&o.preload, "preload", 128, "data preloaded as fetch/schedule/search targets")
	flag.IntVar(&o.slots, "slots", 16, "per-client ring of put target slots")
	flag.Int64Var(&o.seed, "seed", 1, "rng seed (op sequences are reproducible per seed)")
	flag.StringVar(&o.out, "out", "BENCH_stress.json", "report file (empty: don't write)")
	flag.BoolVar(&o.failOnErrors, "fail-on-errors", false, "exit nonzero when any op errored or throughput is zero")
	flag.IntVar(&o.failover, "failover", 0, "instead of a load run, measure N kill-the-owner failover rounds on a replicated in-process plane (use with -shards, -replicas, -out BENCH_failover.json)")
	flag.IntVar(&o.replicas, "replicas", 2, "replication factor of the -failover plane")
	flag.BoolVar(&o.scaleout, "scaleout", false, "instead of a load run, measure a live 2->4 scale-out under BLAST traffic on an elastic in-process plane (use with -out BENCH_rebalance.json)")
	flag.Parse()

	rep, err := run(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())
	if o.out != "" {
		if err := rep.WriteJSON(o.out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", o.out)
	}
	if o.failOnErrors && (rep.Errors > 0 || rep.Throughput <= 0) {
		fmt.Fprintf(os.Stderr, "bitdew-stress: %d errors, %.0f ops/sec: failing as asked\n", rep.Errors, rep.Throughput)
		os.Exit(1)
	}
}

// run executes the configured load run: against the addressed plane, or
// against a fresh in-process one.
func run(o options) (*loadgen.Report, error) {
	mix, err := loadgen.ParseMix(o.mix)
	if err != nil {
		return nil, err
	}
	if o.scaleout {
		if o.service != "" {
			return nil, fmt.Errorf("bitdew-stress: -scaleout grows its own elastic plane; it cannot run against -service")
		}
		srep, err := testbed.RunScaleOut(testbed.ScaleOutConfig{
			StartShards:  2,
			EndShards:    4,
			Workers:      4,
			Tasks:        96,
			PayloadBytes: o.payload,
			ServiceTime:  6 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		return srep.BuildReport(), nil
	}
	if o.failover > 0 {
		if o.service != "" {
			return nil, fmt.Errorf("bitdew-stress: -failover kills shards; it only runs against its own in-process plane, not -service")
		}
		shards := o.shards
		if shards < 3 {
			shards = 3
		}
		frep, err := testbed.RunFailover(testbed.FailoverConfig{
			Shards:       shards,
			Replicas:     o.replicas,
			PayloadBytes: o.payload,
			Rounds:       o.failover,
		})
		if err != nil {
			return nil, err
		}
		return frep.BuildReport(), nil
	}

	load := loadgen.Config{
		Clients:  o.clients,
		Duration: o.duration,
		Warmup:   o.warmup,
		Mix:      mix,
		OpenLoop: o.open,
		Rate:     o.rate,
		Seed:     o.seed,
	}
	plane := loadgen.PlaneConfig{
		Conns:          o.conns,
		PayloadBytes:   o.payload,
		Preload:        o.preload,
		SlotsPerClient: o.slots,
	}

	if o.service == "" {
		return testbed.RunStress(testbed.StressConfig{
			Shards: o.shards,
			Load:   load,
			Plane:  plane,
		})
	}

	plane.Addrs = core.ParseMembership(o.service)
	clients, err := loadgen.ConnectPlane(plane)
	if err != nil {
		return nil, err
	}
	defer clients.Close()
	res, err := loadgen.Run(load, clients.Factory())
	if err != nil {
		return nil, err
	}
	return loadgen.BuildReport("stress", res, len(plane.Addrs), clients.Conns(), clients.PayloadBytes()), nil
}
