package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"bitdew/internal/loadgen"
)

// TestRunInProcess drives the binary's run() exactly as the CLI would: a
// short mixed-load window against a freshly booted 2-shard plane, then
// checks the report round-trips through the -out file.
func TestRunInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a sharded plane")
	}
	o := options{
		shards:   2,
		clients:  8,
		conns:    2,
		duration: 600 * time.Millisecond,
		warmup:   150 * time.Millisecond,
		mix:      loadgen.DefaultMix().String(),
		payload:  128,
		preload:  16,
		slots:    4,
		seed:     1,
	}
	rep, err := run(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput <= 0 || rep.Ops == 0 {
		t.Fatalf("no throughput: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d op errors", rep.Errors)
	}
	if rep.Scenario.Shards != 2 || rep.Scenario.Conns != 2 {
		t.Fatalf("scenario = %+v", rep.Scenario)
	}
	if rep.Summary() == "" {
		t.Fatal("empty summary")
	}

	out := filepath.Join(t.TempDir(), "BENCH_stress.json")
	if err := rep.WriteJSON(out); err != nil {
		t.Fatal(err)
	}
	back, err := loadgen.ReadReport(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.Ops != rep.Ops || back.Name != "stress" {
		t.Fatalf("round trip: got %d ops (%q), want %d", back.Ops, back.Name, rep.Ops)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}

// TestRunRejectsBadMix pins flag validation: a bad mix fails before any
// plane is booted.
func TestRunRejectsBadMix(t *testing.T) {
	if _, err := run(options{mix: "delete=1"}); err == nil {
		t.Fatal("want error for unknown op class")
	}
}
