package main

import (
	"os"
	"path/filepath"
	"testing"

	"bitdew/internal/attr"
	"bitdew/internal/core"
	"bitdew/internal/runtime"
)

// startFromOptions builds the container exactly as main does.
func startFromOptions(t *testing.T, o options) (*runtime.Container, func()) {
	t.Helper()
	cfg, cleanup, err := buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Addr = "" // serve in-process for the test
	cfg.DisableFTP = true
	cfg.DisableSwarm = true
	c, err := runtime.NewContainer(cfg)
	if err != nil {
		cleanup()
		t.Fatal(err)
	}
	return c, func() {
		c.Close()
		cleanup()
	}
}

// populate puts one scheduled datum through the service plane.
func populate(t *testing.T, c *runtime.Container) {
	t.Helper()
	node, err := core.NewNode(core.NodeConfig{Host: "cli", Comms: core.ConnectLocal(c.Mux)})
	if err != nil {
		t.Fatal(err)
	}
	node.SetClientOnly(true)
	d, err := node.BitDew.CreateData("greeting")
	if err != nil {
		t.Fatal(err)
	}
	if err := node.BitDew.Put(d, []byte("hello, data space")); err != nil {
		t.Fatal(err)
	}
	if err := node.ActiveData.Schedule(*d, attr.Attribute{Name: "greeting", Replica: attr.ReplicaAll, Protocol: "http"}); err != nil {
		t.Fatal(err)
	}
}

func TestStateDirSurvivesRestart(t *testing.T) {
	o := options{stateDir: t.TempDir()}

	c, stop := startFromOptions(t, o)
	populate(t, c)
	stop() // the "crash"

	re, stop2 := startFromOptions(t, o)
	defer stop2()

	node, err := core.NewNode(core.NodeConfig{Host: "cli2", Comms: core.ConnectLocal(re.Mux)})
	if err != nil {
		t.Fatal(err)
	}
	node.SetClientOnly(true)
	d, err := node.BitDew.SearchDataFirst("greeting")
	if err != nil {
		t.Fatal(err)
	}
	content, err := node.BitDew.GetBytes(d)
	if err != nil || string(content) != "hello, data space" {
		t.Fatalf("content after restart = %q, %v", content, err)
	}
	// The broadcast schedule survives too: a worker syncing against the
	// restarted scheduler is assigned the datum.
	if entries := re.DS.Entries(); len(entries) != 1 || !entries[0].Attr.WantsBroadcast() {
		t.Fatalf("scheduler entries after restart: %+v", entries)
	}
	res := re.DS.Sync("fresh-worker", nil)
	if len(res.Fetch) != 1 || res.Fetch[0].Data.Name != "greeting" {
		t.Fatalf("restarted scheduler assigned %+v", res.Fetch)
	}
}

func TestLegacyWALReplaysCatalog(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "bitdew.wal")
	o := options{walPath: walPath}

	c, stop := startFromOptions(t, o)
	populate(t, c)
	stop()

	if fi, err := os.Stat(walPath); err != nil || fi.Size() == 0 {
		t.Fatalf("legacy WAL not written: %v", err)
	}

	re, stop2 := startFromOptions(t, o)
	defer stop2()
	node, err := core.NewNode(core.NodeConfig{Host: "cli2", Comms: core.ConnectLocal(re.Mux)})
	if err != nil {
		t.Fatal(err)
	}
	node.SetClientOnly(true)
	d, err := node.BitDew.SearchDataFirst("greeting")
	if err != nil {
		t.Fatalf("catalog lost after -wal restart: %v", err)
	}
	if locs, err := re.DC.Locators(d.UID); err != nil || len(locs) == 0 {
		t.Fatalf("locators lost after -wal restart: %v, %v", locs, err)
	}
	// The legacy log carries the scheduler's rows too (every service
	// writes through the container's store), and copyStore recovers them.
	if entries := re.DS.Entries(); len(entries) != 1 || entries[0].Data.UID != d.UID {
		t.Fatalf("scheduler entries lost after -wal restart: %+v", entries)
	}
}

func TestStateDirAndWALAreExclusive(t *testing.T) {
	_, _, err := buildConfig(options{stateDir: "x", walPath: "y"})
	if err == nil {
		t.Fatal("buildConfig accepted both -state-dir and -wal")
	}
}
