// Command bitdew-service runs a BitDew service host: the four D* services
// (Data Catalog, Data Repository, Data Transfer, Data Scheduler) plus the
// protocol back-ends (FTP-like server, HTTP server, swarm tracker) over
// shared storage. This is the "stable node" of the paper's architecture.
//
// Usage:
//
//	bitdew-service -addr 0.0.0.0:4567 [-state-dir ./state] [-wal bitdew.wal] [-datadir ./store]
//	bitdew-service -addr 127.0.0.1:4600 -shards 4 [-state-dir ./state]
//	bitdew-service -addr 127.0.0.1:4601 -shard-id 0 -peers 127.0.0.1:4601,127.0.0.1:4602 [-state-dir ./state]
//
// With -state-dir, the whole service plane is durable: catalog data and
// locators, scheduler placements and repository endpoints are checkpointed
// under <state-dir>/meta (snapshot + compacted write-ahead log) and
// repository content under <state-dir>/data, and all of it is recovered on
// restart (the paper's transient fault model for service hosts — an
// administrator restarts them). The older -wal flag persists the service
// tables to a single uncompacted append-only log and is kept for
// compatibility.
//
// The service plane shards horizontally. -shards N runs N independent
// containers in this process, shard i listening on the -addr port + i and
// checkpointing under <state-dir>/shard-<i>. For one shard per machine,
// run each process with -shard-id I -peers addr0,addr1,... — the ordered
// peer list is the membership table every process and every client must
// share, because data home onto shards by consistent hash over that order
// (connect clients with the same comma-separated list). Each shard also
// serves the table under the "ring" rpc service for inspection
// (bitdew ring).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"bitdew/internal/core"
	"bitdew/internal/db"
	"bitdew/internal/repository"
	"bitdew/internal/runtime"
)

// options are the CLI flags, separated from main so tests can drive the
// same configuration path the binary runs.
type options struct {
	addr     string
	stateDir string
	walPath  string
	dataDir  string
	throttle int64
	shards   int
	shardID  int
	peers    string
	replicas int
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:4567", "rpc listen address (with -shards, shard i listens on port+i)")
	flag.StringVar(&o.stateDir, "state-dir", "", "directory checkpointing ALL service state (metadata + content); restart recovers it")
	flag.StringVar(&o.walPath, "wal", "", "legacy uncompacted write-ahead-log file (superseded by -state-dir)")
	flag.StringVar(&o.dataDir, "datadir", "", "directory for repository content (default: in-memory, or <state-dir>/data)")
	flag.Int64Var(&o.throttle, "throttle", 0, "ftp server per-connection rate cap in bytes/s (0 = unlimited)")
	flag.IntVar(&o.shards, "shards", 0, "run a whole sharded service plane of N containers in this process")
	flag.IntVar(&o.shardID, "shard-id", -1, "serve one shard of a multi-process plane (requires -peers)")
	flag.StringVar(&o.peers, "peers", "", "comma-separated shard addresses of the whole plane, in placement order")
	flag.IntVar(&o.replicas, "replicas", 1, "replication factor R of a sharded plane: each key range lives on its home shard plus R-1 successors, with automatic failover (needs -shards or -shard-id/-peers)")
	flag.Parse()

	if o.replicas > 1 && o.shards < 1 && o.shardID < 0 {
		log.Fatalf("-replicas %d needs a sharded plane (-shards N, or -shard-id/-peers)", o.replicas)
	}

	if o.shards < 0 {
		log.Fatalf("-shards %d: want a positive shard count", o.shards)
	}
	// -shards 1 still runs the sharded layout (state under shard-0, ring
	// service mounted), so asking for shards always yields the sharded
	// state layout and membership service rather than silently falling
	// back to the legacy single-container paths. (Changing the shard
	// count of an EXISTING state dir re-homes data without migrating
	// them; redistribute through a client before growing a plane.)
	if o.shards >= 1 {
		if err := runShardedPlane(o); err != nil {
			log.Fatal(err)
		}
		return
	}

	peers, self, err := shardMembership(o)
	if err != nil {
		log.Fatal(err)
	}

	cfg, cleanup, err := buildConfig(o)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()
	var table *runtime.MembershipTable
	if o.replicas > 1 && peers != nil {
		// One shard of a multi-process replicated plane. Boots always
		// probe (no SkipBootCheck): this process cannot know whether a
		// peer promoted over its ranges while it was down.
		cfg.Replication = &runtime.ReplicationConfig{
			Shard:    self,
			Addrs:    peers,
			Replicas: o.replicas,
			Logf:     log.Printf,
		}
	} else if peers != nil {
		// One shard of an unreplicated multi-process plane: elastic. The
		// shard serves the rebalance protocol, so `bitdew ring add`/`drain`
		// can reshape the plane live; every committed membership change is
		// published through the shard's ring table.
		table = runtime.NewMembershipTable(self, peers, o.replicas, 1)
		cfg.Rebalance = &runtime.RebalanceConfig{
			Shard:    self,
			Shards:   len(peers),
			OnCommit: table.Set,
			Logf:     log.Printf,
		}
	}

	c, err := runtime.NewContainer(cfg)
	if err != nil {
		log.Fatalf("starting services: %v", err)
	}
	defer c.Close()

	if peers != nil {
		if table != nil {
			// A restarted shard of a previously reshaped plane recovered its
			// committed epoch; announce it (the operator restarts with the
			// matching -peers list).
			table.Set(c.Rebalance().Epoch(), peers)
			table.Mount(c.Mux)
		} else {
			runtime.MountMembership(c.Mux, self, peers, o.replicas)
		}
		fmt.Printf("bitdew-service shard %d of %d listening\n", self, len(peers))
		fmt.Printf("  membership:        %s\n", strings.Join(peers, ","))
		if o.replicas > 1 {
			fmt.Printf("  replication:       R=%d (automatic failover)\n", o.replicas)
		} else {
			fmt.Printf("  elastic:           epoch %d (grow/shrink with `bitdew ring add/drain`)\n", c.Rebalance().Epoch())
		}
	} else {
		fmt.Printf("bitdew-service listening\n")
	}
	fmt.Printf("  rpc (dc/dr/dt/ds): %s\n", c.Addr())
	if o.stateDir != "" {
		fmt.Printf("  state:             %s (restartable)\n", o.stateDir)
	}
	if c.FTP != nil {
		fmt.Printf("  ftp:               %s\n", c.FTP.Addr())
	}
	if c.HTTP != nil {
		fmt.Printf("  http:              %s\n", c.HTTP.Addr())
	}
	if c.Tracker != nil {
		fmt.Printf("  swarm tracker:     %s\n", c.Tracker.Addr())
	}

	awaitSignal()
}

func awaitSignal() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
}

// shardMembership resolves the -shard-id/-peers pair into the membership
// table ("" peers with no shard-id means an unsharded host).
func shardMembership(o options) ([]string, int, error) {
	if o.shardID < 0 && o.peers == "" {
		return nil, 0, nil
	}
	if o.shardID < 0 || o.peers == "" {
		return nil, 0, fmt.Errorf("-shard-id and -peers go together")
	}
	peers := core.ParseMembership(o.peers)
	if o.shardID >= len(peers) {
		return nil, 0, fmt.Errorf("-shard-id %d out of range for %d peers", o.shardID, len(peers))
	}
	return peers, o.shardID, nil
}

// shardAddrs derives the N listen addresses of a single-process plane from
// the base address: same host, consecutive ports.
func shardAddrs(base string, n int) ([]string, error) {
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return nil, fmt.Errorf("-addr %q: %w", base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("-addr %q: port: %w", base, err)
	}
	if port == 0 {
		return nil, nil // let every shard pick its own port
	}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = net.JoinHostPort(host, strconv.Itoa(port+i))
	}
	return addrs, nil
}

// runShardedPlane serves a whole N-shard plane from this process.
func runShardedPlane(o options) error {
	if o.walPath != "" || o.dataDir != "" {
		return fmt.Errorf("-shards manages per-shard state; use -state-dir, not -wal/-datadir")
	}
	if o.shardID >= 0 || o.peers != "" {
		return fmt.Errorf("-shards runs the whole plane; -shard-id/-peers are for one-shard-per-process deployments")
	}
	addrs, err := shardAddrs(o.addr, o.shards)
	if err != nil {
		return err
	}
	plane, err := runtime.NewShardedContainer(runtime.ShardedConfig{
		Shards:      o.shards,
		Addrs:       addrs,
		StateDir:    o.stateDir,
		FTPThrottle: o.throttle,
		Replicas:    o.replicas,
		ReplLogf:    log.Printf,
	})
	if err != nil {
		return fmt.Errorf("starting sharded plane: %v", err)
	}
	defer plane.Close()

	fmt.Printf("bitdew-service sharded plane listening (%d shards)\n", plane.N())
	if plane.Replicas() > 1 {
		fmt.Printf("  replication:       R=%d (automatic failover)\n", plane.Replicas())
	}
	fmt.Printf("  membership:        %s\n", strings.Join(plane.Addrs(), ","))
	for i, addr := range plane.Addrs() {
		fmt.Printf("  shard %d rpc:       %s\n", i, addr)
	}
	if o.stateDir != "" {
		fmt.Printf("  state:             %s (per-shard, restartable)\n", o.stateDir)
	}

	awaitSignal()
	return nil
}

// buildConfig turns CLI options into a container configuration. The
// returned cleanup releases resources the configuration holds open (the
// legacy WAL file) and must run after the container closes.
func buildConfig(o options) (runtime.ContainerConfig, func(), error) {
	cfg := runtime.ContainerConfig{Addr: o.addr, FTPThrottle: o.throttle, StateDir: o.stateDir}
	cleanup := func() {}

	if o.stateDir != "" && o.walPath != "" {
		return cfg, cleanup, fmt.Errorf("-state-dir already persists the catalog; drop -wal")
	}

	if o.walPath != "" {
		store, walCleanup, err := openLegacyWAL(o.walPath)
		if err != nil {
			return cfg, cleanup, err
		}
		cfg.Store = store
		cleanup = walCleanup
	}

	if o.dataDir != "" {
		backend, err := repository.NewDirBackend(o.dataDir)
		if err != nil {
			cleanup()
			return cfg, func() {}, fmt.Errorf("opening datadir: %w", err)
		}
		cfg.Backend = backend
	}
	return cfg, cleanup, nil
}

// openLegacyWAL recovers a -wal file into a fresh store that keeps
// appending to it (the pre-state-dir persistence path: a bare append-only
// log — no snapshots, no compaction, so the file grows without bound;
// prefer -state-dir).
func openLegacyWAL(walPath string) (db.Store, func(), error) {
	store := db.NewRowStore()
	if f, err := os.Open(walPath); err == nil {
		if err := store.Replay(f); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("replaying %s: %w", walPath, err)
		}
		f.Close()
		log.Printf("recovered catalog state from %s", walPath)
	}
	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("opening WAL: %w", err)
	}
	walStore := db.NewRowStore(db.WithWAL(wal))
	if err := copyStore(store, walStore); err != nil {
		wal.Close()
		return nil, nil, fmt.Errorf("restoring state: %w", err)
	}
	return walStore, func() { wal.Close() }, nil
}

// copyStore copies every row from src into dst.
func copyStore(src *db.RowStore, dst db.Store) error {
	// Tables used by the services are fixed; scanning a superset is safe.
	// All four services write through the container's store, so the legacy
	// WAL accumulates scheduler and repository rows too — recover them all
	// rather than silently dropping what was paid for on the append path.
	for _, table := range []string{"dc_data", "dc_locators", "ds_entries", "dr_endpoints"} {
		err := src.Scan(table, func(k string, v []byte) bool {
			return dst.Put(table, k, v) == nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}
