// Command bitdew-service runs a BitDew service host: the four D* services
// (Data Catalog, Data Repository, Data Transfer, Data Scheduler) plus the
// protocol back-ends (FTP-like server, HTTP server, swarm tracker) over
// shared storage. This is the "stable node" of the paper's architecture.
//
// Usage:
//
//	bitdew-service -addr 0.0.0.0:4567 [-state-dir ./state] [-wal bitdew.wal] [-datadir ./store]
//
// With -state-dir, the whole service plane is durable: catalog data and
// locators, scheduler placements and repository endpoints are checkpointed
// under <state-dir>/meta (snapshot + compacted write-ahead log) and
// repository content under <state-dir>/data, and all of it is recovered on
// restart (the paper's transient fault model for service hosts — an
// administrator restarts them). The older -wal flag persists the service
// tables to a single uncompacted append-only log and is kept for
// compatibility.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"bitdew/internal/db"
	"bitdew/internal/repository"
	"bitdew/internal/runtime"
)

// options are the CLI flags, separated from main so tests can drive the
// same configuration path the binary runs.
type options struct {
	addr     string
	stateDir string
	walPath  string
	dataDir  string
	throttle int64
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:4567", "rpc listen address")
	flag.StringVar(&o.stateDir, "state-dir", "", "directory checkpointing ALL service state (metadata + content); restart recovers it")
	flag.StringVar(&o.walPath, "wal", "", "legacy uncompacted write-ahead-log file (superseded by -state-dir)")
	flag.StringVar(&o.dataDir, "datadir", "", "directory for repository content (default: in-memory, or <state-dir>/data)")
	flag.Int64Var(&o.throttle, "throttle", 0, "ftp server per-connection rate cap in bytes/s (0 = unlimited)")
	flag.Parse()

	cfg, cleanup, err := buildConfig(o)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()

	c, err := runtime.NewContainer(cfg)
	if err != nil {
		log.Fatalf("starting services: %v", err)
	}
	defer c.Close()

	fmt.Printf("bitdew-service listening\n")
	fmt.Printf("  rpc (dc/dr/dt/ds): %s\n", c.Addr())
	if o.stateDir != "" {
		fmt.Printf("  state:             %s (restartable)\n", o.stateDir)
	}
	if c.FTP != nil {
		fmt.Printf("  ftp:               %s\n", c.FTP.Addr())
	}
	if c.HTTP != nil {
		fmt.Printf("  http:              %s\n", c.HTTP.Addr())
	}
	if c.Tracker != nil {
		fmt.Printf("  swarm tracker:     %s\n", c.Tracker.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
}

// buildConfig turns CLI options into a container configuration. The
// returned cleanup releases resources the configuration holds open (the
// legacy WAL file) and must run after the container closes.
func buildConfig(o options) (runtime.ContainerConfig, func(), error) {
	cfg := runtime.ContainerConfig{Addr: o.addr, FTPThrottle: o.throttle, StateDir: o.stateDir}
	cleanup := func() {}

	if o.stateDir != "" && o.walPath != "" {
		return cfg, cleanup, fmt.Errorf("-state-dir already persists the catalog; drop -wal")
	}

	if o.walPath != "" {
		store, walCleanup, err := openLegacyWAL(o.walPath)
		if err != nil {
			return cfg, cleanup, err
		}
		cfg.Store = store
		cleanup = walCleanup
	}

	if o.dataDir != "" {
		backend, err := repository.NewDirBackend(o.dataDir)
		if err != nil {
			cleanup()
			return cfg, func() {}, fmt.Errorf("opening datadir: %w", err)
		}
		cfg.Backend = backend
	}
	return cfg, cleanup, nil
}

// openLegacyWAL recovers a -wal file into a fresh store that keeps
// appending to it (the pre-state-dir persistence path: a bare append-only
// log — no snapshots, no compaction, so the file grows without bound;
// prefer -state-dir).
func openLegacyWAL(walPath string) (db.Store, func(), error) {
	store := db.NewRowStore()
	if f, err := os.Open(walPath); err == nil {
		if err := store.Replay(f); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("replaying %s: %w", walPath, err)
		}
		f.Close()
		log.Printf("recovered catalog state from %s", walPath)
	}
	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("opening WAL: %w", err)
	}
	walStore := db.NewRowStore(db.WithWAL(wal))
	if err := copyStore(store, walStore); err != nil {
		wal.Close()
		return nil, nil, fmt.Errorf("restoring state: %w", err)
	}
	return walStore, func() { wal.Close() }, nil
}

// copyStore copies every row from src into dst.
func copyStore(src *db.RowStore, dst db.Store) error {
	// Tables used by the services are fixed; scanning a superset is safe.
	// All four services write through the container's store, so the legacy
	// WAL accumulates scheduler and repository rows too — recover them all
	// rather than silently dropping what was paid for on the append path.
	for _, table := range []string{"dc_data", "dc_locators", "ds_entries", "dr_endpoints"} {
		err := src.Scan(table, func(k string, v []byte) bool {
			return dst.Put(table, k, v) == nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}
