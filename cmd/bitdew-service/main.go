// Command bitdew-service runs a BitDew service host: the four D* services
// (Data Catalog, Data Repository, Data Transfer, Data Scheduler) plus the
// protocol back-ends (FTP-like server, HTTP server, swarm tracker) over
// shared storage. This is the "stable node" of the paper's architecture.
//
// Usage:
//
//	bitdew-service -addr 0.0.0.0:4567 [-wal bitdew.wal] [-datadir ./store]
//
// With -wal, catalog meta-data survive a transient service failure: on
// restart the WAL is replayed before serving (the paper's fault model for
// service hosts).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"bitdew/internal/db"
	"bitdew/internal/repository"
	"bitdew/internal/runtime"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4567", "rpc listen address")
	walPath := flag.String("wal", "", "write-ahead-log file for catalog metadata (enables restart recovery)")
	dataDir := flag.String("datadir", "", "directory for repository content (default: in-memory)")
	throttle := flag.Int64("throttle", 0, "ftp server per-connection rate cap in bytes/s (0 = unlimited)")
	flag.Parse()

	cfg := runtime.ContainerConfig{Addr: *addr, FTPThrottle: *throttle}

	if *walPath != "" {
		store := db.NewRowStore()
		if f, err := os.Open(*walPath); err == nil {
			if err := store.Replay(f); err != nil {
				log.Fatalf("replaying %s: %v", *walPath, err)
			}
			f.Close()
			log.Printf("recovered catalog state from %s", *walPath)
		}
		wal, err := os.OpenFile(*walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("opening WAL: %v", err)
		}
		defer wal.Close()
		walStore := db.NewRowStore(db.WithWAL(wal))
		if err := copyStore(store, walStore); err != nil {
			log.Fatalf("restoring state: %v", err)
		}
		cfg.Store = walStore
	}

	if *dataDir != "" {
		backend, err := repository.NewDirBackend(*dataDir)
		if err != nil {
			log.Fatalf("opening datadir: %v", err)
		}
		cfg.Backend = backend
	}

	c, err := runtime.NewContainer(cfg)
	if err != nil {
		log.Fatalf("starting services: %v", err)
	}
	defer c.Close()

	fmt.Printf("bitdew-service listening\n")
	fmt.Printf("  rpc (dc/dr/dt/ds): %s\n", c.Addr())
	if c.FTP != nil {
		fmt.Printf("  ftp:               %s\n", c.FTP.Addr())
	}
	if c.HTTP != nil {
		fmt.Printf("  http:              %s\n", c.HTTP.Addr())
	}
	if c.Tracker != nil {
		fmt.Printf("  swarm tracker:     %s\n", c.Tracker.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("shutting down")
}

// copyStore copies every row from src into dst.
func copyStore(src *db.RowStore, dst db.Store) error {
	// Tables used by the services are fixed; scanning a superset is safe.
	for _, table := range []string{"dc_data", "dc_locators"} {
		err := src.Scan(table, func(k string, v []byte) bool {
			return dst.Put(table, k, v) == nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}
