// Command bitdew-worker runs a reservoir host: a volatile node offering
// its local storage to the data space. It attaches to a service host,
// then pulls the Data Scheduler periodically, downloading whatever data
// the attributes place on it and dropping whatever becomes obsolete.
//
// Usage:
//
//	bitdew-worker -service 127.0.0.1:4567 -host worker-1 [-sync 1s] [-cachedir ./cache]
//
// Against a sharded service plane, pass every shard's address to -service
// as a comma-separated list in membership order; the worker then
// heartbeats every shard's scheduler and serves whatever each places on
// it.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"bitdew/internal/core"
	"bitdew/internal/repository"
	"bitdew/internal/runtime"
)

func main() {
	service := flag.String("service", "127.0.0.1:4567", "service rpc address(es); comma-separate a sharded plane's membership")
	host := flag.String("host", "", "host identity (default: os hostname)")
	syncPeriod := flag.Duration("sync", core.DefaultSyncPeriod, "scheduler pull period")
	cacheDir := flag.String("cachedir", "", "directory for the local data cache (default: in-memory)")
	concurrency := flag.Int("transfers", 4, "maximum concurrent transfers")
	flag.Parse()

	name := *host
	if name == "" {
		h, err := os.Hostname()
		if err != nil {
			log.Fatalf("no -host and hostname lookup failed: %v", err)
		}
		name = h
	}

	addrs := core.ParseMembership(*service)
	var shardOpts []core.ShardOption
	if len(addrs) > 1 {
		// A replicated plane advertises R in its membership table; route
		// around dead shards instead of erroring on data homed there.
		shardOpts = append(shardOpts, core.WithReplicas(runtime.DiscoverReplicas(addrs)))
	}
	set, err := core.ConnectSharded(addrs, shardOpts...)
	if err != nil {
		log.Fatalf("connecting to %s: %v", *service, err)
	}
	defer set.Close()

	var backend repository.Backend
	if *cacheDir != "" {
		backend, err = repository.NewDirBackend(*cacheDir)
		if err != nil {
			log.Fatalf("opening cachedir: %v", err)
		}
	}

	node, err := core.NewNode(core.NodeConfig{
		Host:        name,
		Shards:      set,
		Backend:     backend,
		SyncPeriod:  *syncPeriod,
		Concurrency: *concurrency,
	})
	if err != nil {
		log.Fatalf("starting node: %v", err)
	}
	node.ActiveData.AddCallback(core.EventHandler{
		OnDataCopy: func(e core.Event) {
			log.Printf("copied %s (attr %s, %d bytes)", e.Data.Name, e.Attr.Name, e.Data.Size)
		},
		OnDataDelete: func(e core.Event) {
			log.Printf("deleted %s (attr %s)", e.Data.Name, e.Attr.Name)
		},
	})
	node.Start()
	defer node.Stop()
	log.Printf("reservoir host %q attached to %s, pulling every %v", name, *service, *syncPeriod)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("leaving the network")
}
