// Package bitdew is a from-scratch Go implementation of BitDew, the
// programmable environment for large-scale data management and
// distribution on Desktop Grids (Fedak, He, Cappello — INRIA RR-6427 /
// SC'08).
//
// The library lives under internal/: the public programming interfaces
// (BitDew, ActiveData, TransferManager) are in internal/core, the runtime
// services (Data Catalog, Data Repository, Data Transfer, Data Scheduler)
// in their own packages, and the back-ends (database engines, transfer
// protocols, DHT) below them. See README.md for the architecture tour,
// DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for paper-versus-measured results.
//
// The benchmarks in bench_test.go regenerate the paper's tables on the
// real components and its figures on the simulated testbeds; the
// cmd/bench-tables binary prints them in the paper's row/column format.
package bitdew
