// Package bitdew is a from-scratch Go implementation of BitDew, the
// programmable environment for large-scale data management and
// distribution on Desktop Grids (Fedak, He, Cappello — INRIA RR-6427 /
// SC'08).
//
// The library lives under internal/: the public programming interfaces
// (BitDew, ActiveData, TransferManager) are in internal/core, the runtime
// services (Data Catalog, Data Repository, Data Transfer, Data Scheduler)
// in their own packages, and the back-ends (database engines, transfer
// protocols, DHT) below them. See README.md for the architecture tour,
// DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for paper-versus-measured results.
//
// The request path is batch-first end to end, because the paper's
// evaluation (§4) shows throughput bounded by per-datum service round
// trips. The rpc layer carries many logical calls in one frame
// (rpc.CallBatch) and coalesces concurrent callers onto shared frames
// (rpc.NewCoalescer); the services expose native batch endpoints
// (catalog RegisterBatch/AddLocatorBatch/LocatorsBatch, repository
// LocatorBatch, scheduler delta synchronization); and the core APIs build
// on them: prefer BitDew.PutAll, CreateDataBatch, FetchAll,
// ActiveData.ScheduleAll and mw.Master.SubmitAll whenever more than one
// datum moves — N data cost a handful of round trips instead of ~5·N. The
// single-datum calls (Put, CreateData, Fetch, Submit) remain as thin
// wrappers over the same path. Volatile hosts heartbeat the scheduler
// with cache deltas (adds/removes since the last acknowledged epoch)
// rather than reshipping their full cache set every period.
//
// The service plane is durable and restartable, matching the paper's
// database-backed services and its transient fault model for service
// hosts: all D* meta-data persists through db.Store (with
// runtime.ContainerConfig.StateDir, a snapshot+WAL db.DurableStore on
// disk, compacted periodically), clients reconnect through rpc.DialAuto,
// and a killed service host comes back with catalog data, locators and
// scheduler placements intact while delta-syncing nodes reconverge
// through the full-resync fallback. testbed.RunServiceChurn and
// BenchmarkServiceRecovery (recovery_bench_test.go) exercise the cycle.
//
// The benchmarks in bench_test.go regenerate the paper's tables on the
// real components and its figures on the simulated testbeds; the
// cmd/bench-tables binary prints them in the paper's row/column format.
// batch_bench_test.go measures the batch path's round-trip collapse over
// the latency-injected "RMI remote" transport.
package bitdew
