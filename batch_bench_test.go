package bitdew_test

import (
	"fmt"
	"testing"
	"time"

	"bitdew/internal/attr"
	"bitdew/internal/core"
	"bitdew/internal/data"
	"bitdew/internal/rpc"
	"bitdew/internal/runtime"
	"bitdew/internal/scheduler"
)

// ---- Batch-first request path (the round-trip collapse) ----
//
// The paper's evaluation shows throughput bounded by per-datum round trips
// to the D* services. These benchmarks run the same workload through the
// sequential single-datum APIs and the batch APIs over the "RMI remote"
// transport (client-side call latency via rpc.WithCallLatency), reporting
// the round-trip counts alongside wall time.

// remoteLatency emulates the paper's RMI-remote configuration; kept small
// so benchmark iterations stay cheap while still dominating per-call cost.
const remoteLatency = 200 * time.Microsecond

// newRemoteFixture starts a service container over TCP and connects a node
// through a latency-injected client.
func newRemoteFixture(b *testing.B, host string) (*runtime.Container, *core.Comms, *core.Node) {
	b.Helper()
	c, err := runtime.NewContainer(runtime.ContainerConfig{Addr: "127.0.0.1:0", DisableFTP: true, DisableSwarm: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	comms, err := core.ConnectWithLatency(c.Addr(), remoteLatency)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { comms.Close() })
	n, err := core.NewNode(core.NodeConfig{Host: host, Comms: comms, Concurrency: 16})
	if err != nil {
		b.Fatal(err)
	}
	return c, comms, n
}

// BenchmarkPutBatch compares putting 100 data sequentially (4 service
// round trips each, plus per-transfer DT control traffic) against PutAll
// (2 shared round trips plus batched DT control). The round_trips metric
// is the acceptance figure: batch must be ≥5× lower.
func BenchmarkPutBatch(b *testing.B) {
	const n = 100
	mkInputs := func(tag string, iter int) ([]string, [][]byte) {
		names := make([]string, n)
		contents := make([][]byte, n)
		for i := range names {
			names[i] = fmt.Sprintf("%s-%d-%03d", tag, iter, i)
			contents[i] = []byte(names[i])
		}
		return names, contents
	}

	b.Run("sequential", func(b *testing.B) {
		_, comms, node := newRemoteFixture(b, "seq")
		b.ResetTimer()
		var trips uint64
		for iter := 0; iter < b.N; iter++ {
			names, contents := mkInputs("seq", iter)
			base := comms.RoundTrips()
			for i := range names {
				d, err := node.BitDew.CreateData(names[i])
				if err != nil {
					b.Fatal(err)
				}
				if err := node.BitDew.Put(d, contents[i]); err != nil {
					b.Fatal(err)
				}
			}
			trips = comms.RoundTrips() - base
		}
		b.ReportMetric(float64(trips), "round_trips")
	})

	b.Run("batch", func(b *testing.B) {
		_, comms, node := newRemoteFixture(b, "batch")
		b.ResetTimer()
		var trips uint64
		for iter := 0; iter < b.N; iter++ {
			names, contents := mkInputs("batch", iter)
			base := comms.RoundTrips()
			ds, err := node.BitDew.CreateDataBatch(names)
			if err != nil {
				b.Fatal(err)
			}
			if err := node.BitDew.PutAll(ds, contents); err != nil {
				b.Fatal(err)
			}
			trips = comms.RoundTrips() - base
		}
		b.ReportMetric(float64(trips), "round_trips")
	})
}

// BenchmarkSyncDelta compares heartbeat costs for a quiescent host holding
// `cached` data: the classic full-set Sync re-encodes the whole cache every
// period, the delta heartbeat ships an empty Δ. Both are one round trip;
// the collapse is in payload (uids_sent) and the encode/scan work behind it.
func BenchmarkSyncDelta(b *testing.B) {
	const cached = 512
	setup := func(b *testing.B) (*scheduler.Client, []data.UID, func()) {
		b.Helper()
		svc := scheduler.New()
		mux := rpc.NewMux()
		svc.Mount(mux)
		srv, err := rpc.Listen("127.0.0.1:0", mux)
		if err != nil {
			b.Fatal(err)
		}
		cli, err := rpc.Dial(srv.Addr(), rpc.WithCallLatency(remoteLatency))
		if err != nil {
			b.Fatal(err)
		}
		uids := make([]data.UID, cached)
		for i := range uids {
			d := data.Data{UID: data.NewUID(), Name: fmt.Sprintf("d%04d", i)}
			uids[i] = d.UID
			if err := svc.Schedule(d, attr.Attribute{Name: "a", Replica: 1}); err != nil {
				b.Fatal(err)
			}
		}
		return scheduler.NewClient(cli), uids, func() { cli.Close(); srv.Close() }
	}

	b.Run("full", func(b *testing.B) {
		client, uids, closeFn := setup(b)
		defer closeFn()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.SyncAs("host", uids, false); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(cached, "uids_sent")
	})

	b.Run("delta", func(b *testing.B) {
		client, uids, closeFn := setup(b)
		defer closeFn()
		r, err := client.SyncDelta(scheduler.SyncDeltaArgs{Host: "host", Full: true, Added: uids})
		if err != nil || r.Resync {
			b.Fatalf("establishing session: %+v, %v", r, err)
		}
		epoch := r.Epoch
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := client.SyncDelta(scheduler.SyncDeltaArgs{Host: "host", Epoch: epoch})
			if err != nil || r.Resync {
				b.Fatalf("delta heartbeat: %+v, %v", r, err)
			}
			epoch = r.Epoch
		}
		b.ReportMetric(0, "uids_sent")
	})
}

// BenchmarkScheduleBatch measures submitting 100 schedule orders one call
// at a time versus one multi-call frame (the mw.Master.SubmitAll path).
func BenchmarkScheduleBatch(b *testing.B) {
	const n = 100
	setup := func(b *testing.B) (rpc.Client, *scheduler.Client, func()) {
		b.Helper()
		svc := scheduler.New()
		mux := rpc.NewMux()
		svc.Mount(mux)
		srv, err := rpc.Listen("127.0.0.1:0", mux)
		if err != nil {
			b.Fatal(err)
		}
		cli, err := rpc.Dial(srv.Addr(), rpc.WithCallLatency(remoteLatency))
		if err != nil {
			b.Fatal(err)
		}
		return cli, scheduler.NewClient(cli), func() { cli.Close(); srv.Close() }
	}
	mkData := func(iter int) []data.Data {
		ds := make([]data.Data, n)
		for i := range ds {
			ds[i] = data.Data{UID: data.NewUID(), Name: fmt.Sprintf("s%d-%03d", iter, i)}
		}
		return ds
	}
	a := attr.Attribute{Name: "t", Replica: 1}

	b.Run("sequential", func(b *testing.B) {
		_, client, closeFn := setup(b)
		defer closeFn()
		b.ResetTimer()
		for iter := 0; iter < b.N; iter++ {
			for _, d := range mkData(iter) {
				if err := client.Schedule(d, a); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("batch", func(b *testing.B) {
		cli, client, closeFn := setup(b)
		defer closeFn()
		b.ResetTimer()
		for iter := 0; iter < b.N; iter++ {
			ds := mkData(iter)
			calls := make([]*rpc.Call, len(ds))
			for i, d := range ds {
				calls[i] = client.ScheduleCall(d, a)
			}
			if err := rpc.CallBatch(cli, calls); err != nil {
				b.Fatal(err)
			}
			if err := rpc.FirstError(calls); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestBenchPutBatchAcceptance pins the acceptance criterion outside the
// bench harness: 100 data over the latency-injected remote transport, batch
// path ≥5× fewer round trips than sequential.
func TestBenchPutBatchAcceptance(t *testing.T) {
	const n = 100
	fixture := func(host string) (*core.Comms, *core.Node) {
		c, err := runtime.NewContainer(runtime.ContainerConfig{Addr: "127.0.0.1:0", DisableFTP: true, DisableSwarm: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		comms, err := core.ConnectWithLatency(c.Addr(), 50*time.Microsecond)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { comms.Close() })
		node, err := core.NewNode(core.NodeConfig{Host: host, Comms: comms, Concurrency: 16})
		if err != nil {
			t.Fatal(err)
		}
		return comms, node
	}

	seqComms, seqNode := fixture("seq")
	base := seqComms.RoundTrips()
	for i := 0; i < n; i++ {
		d, err := seqNode.BitDew.CreateData(fmt.Sprintf("s%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := seqNode.BitDew.Put(d, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	seqTrips := seqComms.RoundTrips() - base

	batchComms, batchNode := fixture("batch")
	names := make([]string, n)
	contents := make([][]byte, n)
	for i := range names {
		names[i] = fmt.Sprintf("b%03d", i)
		contents[i] = []byte("x")
	}
	base = batchComms.RoundTrips()
	ds, err := batchNode.BitDew.CreateDataBatch(names)
	if err != nil {
		t.Fatal(err)
	}
	if err := batchNode.BitDew.PutAll(ds, contents); err != nil {
		t.Fatal(err)
	}
	batchTrips := batchComms.RoundTrips() - base

	t.Logf("sequential: %d round trips, batch: %d round trips (%.1fx)",
		seqTrips, batchTrips, float64(seqTrips)/float64(batchTrips))
	if batchTrips*5 > seqTrips {
		t.Errorf("batch = %d round trips vs sequential = %d: want ≥5× fewer", batchTrips, seqTrips)
	}
}
