package bitdew_test

import (
	"fmt"
	"testing"
	"time"

	"bitdew/internal/testbed"
)

// ---- Shard scaling (BLAST-workload throughput vs shard count) ----
//
// The paper's D* services are single hosts; the sharded service plane
// partitions catalog, repository and scheduler across N containers by
// consistent hash of the data UID. These runs emulate each service host's
// finite capacity (rpc serve limit 1, a fixed per-frame service time) so
// the benchmark measures what sharding is for: the same BLAST wave
// distributed through 1, 2 and 4 shards, throughput scaling with the
// shards because every shard serializes only its own frames.

// shardScalingConfig is the shared workload; only the shard count varies.
func shardScalingConfig(shards int) testbed.ShardedBlastConfig {
	return testbed.ShardedBlastConfig{
		Shards:       shards,
		Workers:      4,
		Tasks:        192,
		PayloadBytes: 256,
		ServiceTime:  6 * time.Millisecond,
	}
}

func BenchmarkShardScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				report, err := testbed.RunShardedBlast(shardScalingConfig(shards))
				if err != nil {
					b.Fatal(err)
				}
				sum += report.ThroughputPerSec
			}
			b.ReportMetric(sum/float64(b.N), "data/sec")
		})
	}
}

// TestBenchShardScalingAcceptance pins the scaling claim the benchmark
// demonstrates: with per-host capacity held constant, 4 shards move the
// same BLAST wave at >= 1.6x the single-shard throughput. (Typical runs
// land near 2.5x — the gap to 4x is the workload's constant client-side
// cost plus placement skew — and 1.6x leaves headroom for noisy CI
// machines and the race detector's overhead.)
func TestBenchShardScalingAcceptance(t *testing.T) {
	run := func(shards int) float64 {
		t.Helper()
		report, err := testbed.RunShardedBlast(shardScalingConfig(shards))
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%d shards: %.0f data/sec (%v for %d data, spread %v)",
			shards, report.ThroughputPerSec, report.DistributionTime, report.Tasks+1, report.PerShardData)
		return report.ThroughputPerSec
	}
	// Measured twice before failing: the capacity model's injected 6ms
	// service time only dominates while the machine has CPU to spare, and
	// `go test ./...` runs heavy packages in parallel — a transient
	// starvation window compresses the ratio without any real scaling
	// regression. A genuine regression fails both rounds.
	var one, four float64
	for round := 0; round < 2; round++ {
		one = run(1)
		four = run(4)
		if four >= 1.6*one {
			return
		}
	}
	t.Fatalf("4 shards reached %.0f data/sec vs %.0f on 1 shard (%.2fx, want >= 1.6x)",
		four, one, four/one)
}
