package bitdew_test

import (
	"testing"
	"time"

	"bitdew/internal/testbed"
)

// ---- Elastic scale-out (grow the plane under live traffic) ----
//
// Where BenchmarkShardScaling boots separate planes at each size, this run
// measures the ELASTIC path: one plane, grown 2->4 by live AddShard while a
// BLAST wave distributes across the stage/cutover/commit windows. The same
// capacity model (rpc serve limit 1, fixed per-frame service time) makes
// each shard's capacity real, so baseline->scaled is a genuine capacity
// gain delivered without stopping the plane. cmd/bitdew-stress -scaleout
// writes the same scenario into the BENCH_rebalance.json trajectory row.

// scaleOutConfig is the shared scenario: grow 2 -> 4 under a 4-worker
// BLAST workload with a 6ms per-frame service time; the measured windows
// are closed-loop home-routed catalog reads (one rpc frame per op).
func scaleOutConfig() testbed.ScaleOutConfig {
	return testbed.ScaleOutConfig{
		StartShards:  2,
		EndShards:    4,
		Workers:      4,
		Tasks:        96,
		PayloadBytes: 256,
		ServiceTime:  6 * time.Millisecond,
	}
}

func BenchmarkScaleOut(b *testing.B) {
	var speedup float64
	var growMS float64
	var steps int
	for i := 0; i < b.N; i++ {
		report, err := testbed.RunScaleOut(scaleOutConfig())
		if err != nil {
			b.Fatal(err)
		}
		speedup += report.Speedup
		for _, d := range report.GrowSteps {
			growMS += float64(d.Milliseconds())
			steps++
		}
	}
	b.ReportMetric(speedup/float64(b.N), "speedup-x")
	b.ReportMetric(growMS/float64(steps), "grow-ms")
}

// TestBenchScaleOutAcceptance pins the claim the benchmark demonstrates:
// growing the plane 2->4 under live traffic loses nothing (RunScaleOut
// itself errors on any unavailability, lost datum or stuck epoch) and the
// grown plane moves the same wave at >= 1.5x the 2-shard baseline.
// (Typical runs land near 1.9x — the gap to 2x is the workload's constant
// client-side cost plus placement skew — and 1.5x leaves headroom for
// noisy CI machines and the race detector's overhead.)
func TestBenchScaleOutAcceptance(t *testing.T) {
	// Measured twice before failing: the capacity model's injected 6ms
	// service time only dominates while the machine has CPU to spare, and
	// `go test ./...` runs heavy packages in parallel — a transient
	// starvation window compresses the ratio without any real scaling
	// regression. A genuine regression fails both rounds.
	var report testbed.ScaleOutReport
	for round := 0; round < 2; round++ {
		var err error
		report, err = testbed.RunScaleOut(scaleOutConfig())
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("baseline %.0f reads/sec -> scaled %.0f reads/sec (%.2fx), grow steps %v, spread %v",
			report.BaselineThroughput, report.ScaledThroughput, report.Speedup,
			report.GrowSteps, report.PerShardData)
		if report.Speedup >= 1.5 {
			return
		}
	}
	t.Fatalf("scaled plane reached %.0f reads/sec vs %.0f baseline (%.2fx, want >= 1.5x)",
		report.ScaledThroughput, report.BaselineThroughput, report.Speedup)
}
