package bitdew_test

import (
	"testing"
	"time"

	"bitdew/internal/testbed"
)

// ---- Service-plane durability (restart-to-reconverged) ----
//
// The paper backs all D* meta-data with a relational database so a service
// restart loses nothing (§3.4–3.5). BenchmarkServiceRecovery measures the
// cost of exercising that property on the real components: a durable
// container over TCP is killed and restarted mid-BLAST-wave, and the
// benchmark reports how long the system takes to reconverge — the
// reconnecting clients re-dial, every delta-syncing worker is told to
// resync and re-reports its full cache, and the recovered scheduler
// re-places whatever the wave had not finished distributing.

func BenchmarkServiceRecovery(b *testing.B) {
	var total time.Duration
	for i := 0; i < b.N; i++ {
		report, err := testbed.RunServiceChurn(testbed.ChurnConfig{
			Workers:  3,
			Tasks:    8,
			Restarts: 1,
			StateDir: b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		total += report.RecoveryTime
	}
	b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "recovery-ms/op")
}

// TestBenchServiceRecoveryAcceptance pins the durability guarantee the
// benchmark relies on: one kill/restart cycle mid-wave loses no data and
// reconverges within the scenario deadline.
func TestBenchServiceRecoveryAcceptance(t *testing.T) {
	report, err := testbed.RunServiceChurn(testbed.ChurnConfig{
		Workers:  2,
		Tasks:    6,
		Restarts: 1,
		StateDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.DataSurvived != 7 || report.LocatorsSurvived != 7 {
		t.Fatalf("survival: %d data, %d locators, want 7/7", report.DataSurvived, report.LocatorsSurvived)
	}
}
