// Benchmarks regenerating the paper's evaluation (one benchmark family per
// table and figure; see DESIGN.md's per-experiment index) plus ablations
// for the design choices the paper calls out. Run:
//
//	go test -bench=. -benchmem
package bitdew_test

import (
	"fmt"
	"testing"
	"time"

	"bitdew/internal/attr"
	"bitdew/internal/catalog"
	"bitdew/internal/data"
	"bitdew/internal/db"
	"bitdew/internal/dht"
	"bitdew/internal/protocols/swarm"
	"bitdew/internal/repository"
	"bitdew/internal/rpc"
	"bitdew/internal/scheduler"
	"bitdew/internal/simgrid"
	"bitdew/internal/testbed"
	"bitdew/internal/transfer"
	"bitdew/internal/workload"
)

const mb = 1e6

// ---- Table 2: data-slot creation across transports and engines ----

func catalogOver(b *testing.B, store db.Store, transport string) (*catalog.Client, func()) {
	b.Helper()
	svc := catalog.NewService(store)
	mux := rpc.NewMux()
	svc.Mount(mux)
	switch transport {
	case "local":
		c := rpc.NewLocalClient(mux, 0)
		return catalog.NewClient(c), func() { c.Close() }
	case "tcp":
		srv, err := rpc.Listen("127.0.0.1:0", mux)
		if err != nil {
			b.Fatal(err)
		}
		c, err := rpc.Dial(srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		return catalog.NewClient(c), func() { c.Close(); srv.Close() }
	case "remote":
		srv, err := rpc.Listen("127.0.0.1:0", mux, rpc.WithServerLatency(200*time.Microsecond))
		if err != nil {
			b.Fatal(err)
		}
		c, err := rpc.Dial(srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		return catalog.NewClient(c), func() { c.Close(); srv.Close() }
	default:
		b.Fatalf("transport %q", transport)
		return nil, nil
	}
}

func benchCreates(b *testing.B, mkStore func(b *testing.B) (db.Store, func()), transport string) {
	store, closeStore := mkStore(b)
	defer closeStore()
	client, closeClient := catalogOver(b, store, transport)
	defer closeClient()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			d := data.New("bench-slot")
			if err := client.Register(*d); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func embeddedStore(b *testing.B) (db.Store, func()) {
	return db.NewRowStore(), func() {}
}

func networkedPooledStore(b *testing.B) (db.Store, func()) {
	srv, err := db.NewServer(db.NewRowStore(), "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	pool := db.NewPool(srv.Addr(), 8)
	return pool, func() { pool.Close(); srv.Close() }
}

func networkedUnpooledStore(b *testing.B) (db.Store, func()) {
	srv, err := db.NewServer(db.NewRowStore(), "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	return db.NewUnpooledStore(srv.Addr()), func() { srv.Close() }
}

func BenchmarkTable2(b *testing.B) {
	engines := map[string]func(*testing.B) (db.Store, func()){
		"HsqlDBlike":        embeddedStore,
		"MySQLlikeDBCP":     networkedPooledStore,
		"MySQLlikeUnpooled": networkedUnpooledStore,
	}
	for _, transport := range []string{"local", "tcp", "remote"} {
		for engine, mk := range engines {
			b.Run(transport+"/"+engine, func(b *testing.B) {
				benchCreates(b, mk, transport)
			})
		}
	}
}

// ---- Table 3: DDC (DHT) vs DC publish ----

func BenchmarkTable3DDCPublish(b *testing.B) {
	ring := dht.NewRing(dht.WithSeed(1))
	for i := 0; i < 50; i++ {
		if _, err := ring.AddNode(fmt.Sprintf("res%03d", i)); err != nil {
			b.Fatal(err)
		}
	}
	ring.StabilizeFully()
	ddc := catalog.NewDDC(ring)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ddc.Publish(data.UID(fmt.Sprintf("d%08d", i)), "host"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3DCPublish(b *testing.B) {
	client, closeFn := catalogOver(b, db.NewRowStore(), "tcp")
	defer closeFn()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.Register(data.Data{UID: data.UID(fmt.Sprintf("d%08d", i)), Name: "replica"}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figures 3a/3b/3c: distribution and overhead (simulated GdX) ----

func BenchmarkFig3aFTP(b *testing.B) {
	p := testbed.GdX()
	for i := 0; i < b.N; i++ {
		r := simgrid.FTPBroadcast(p, 250, 500*mb, nil)
		if r.Completion <= 0 {
			b.Fatal("no completion")
		}
	}
}

func BenchmarkFig3aBitTorrent(b *testing.B) {
	p := testbed.GdX()
	for i := 0; i < b.N; i++ {
		r := simgrid.SwarmBroadcast(p, 250, 500*mb, nil, nil)
		if r.Completion <= 0 {
			b.Fatal("no completion")
		}
	}
}

func BenchmarkFig3bOverhead(b *testing.B) {
	p := testbed.GdX()
	ov := simgrid.DefaultOverhead()
	for i := 0; i < b.N; i++ {
		raw := simgrid.FTPBroadcast(p, 100, 100*mb, nil).Completion
		bd := simgrid.FTPBroadcast(p, 100, 100*mb, ov).Completion
		if bd <= raw {
			b.Fatal("overhead not positive")
		}
	}
}

// ---- Figure 4: fault scenario ----

func BenchmarkFig4FaultScenario(b *testing.B) {
	p := testbed.DSLLab()
	for i := 0; i < b.N; i++ {
		r := simgrid.FaultScenario(p, 4*mb, 5, 5, 20, 1.0)
		if len(r.Events) != 10 {
			b.Fatalf("events = %d", len(r.Events))
		}
	}
}

// ---- Figures 5/6: BLAST master/worker ----

func BenchmarkFig5BlastSweep(b *testing.B) {
	p := testbed.GdX()
	workers := []int{10, 20, 50, 100, 150, 200, 250, 275}
	for i := 0; i < b.N; i++ {
		for _, proto := range []string{"ftp", "bittorrent"} {
			if _, err := simgrid.BlastSweep(p, workers, proto); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig6BlastBreakdown(b *testing.B) {
	p := testbed.Grid5000()
	for i := 0; i < b.N; i++ {
		for _, proto := range []string{"ftp", "bittorrent"} {
			if _, err := simgrid.BlastRun(p, 400, simgrid.DefaultBlastParams(proto)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---- Ablations (DESIGN.md) ----

// BenchmarkAblationCatalog compares the lookup paths behind §3.4.1's
// hybrid design: the centralized DC, the DHT-backed DDC, and the hybrid
// (permanent copy from DC, replicas from DDC).
func BenchmarkAblationCatalog(b *testing.B) {
	// The ring pays a per-hop latency so DDC lookups reflect routed
	// wide-area cost, as in Table 3.
	ring := dht.NewRing(dht.WithSeed(3), dht.WithHopDelay(50*time.Microsecond))
	for i := 0; i < 32; i++ {
		ring.AddNode(fmt.Sprintf("n%02d", i))
	}
	ring.StabilizeFully()
	ddc := catalog.NewDDC(ring)
	dc := catalog.NewService(db.NewRowStore())

	const entries = 512
	uids := make([]data.UID, entries)
	for i := range uids {
		uids[i] = data.NewUID()
		dc.Register(data.Data{UID: uids[i], Name: "x"})
		ddc.Publish(uids[i], "owner")
	}
	b.Run("DC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dc.Get(uids[i%entries]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DDC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ddc.Owners(uids[i%entries]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Hybrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			uid := uids[i%entries]
			if _, err := dc.Get(uid); err != nil {
				b.Fatal(err)
			}
			if _, err := ddc.Owners(uid); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMonitorPeriod sweeps the receiver-driven monitoring
// heartbeat: the completion-time overhead the control plane inflicts on a
// fixed distribution as the period shrinks (paper §4.3's discussion of
// heartbeats vs the BOINC-like multi-hour periods).
func BenchmarkAblationMonitorPeriod(b *testing.B) {
	p := testbed.GdX()
	for _, period := range []float64{0.1, 0.5, 2, 10} {
		b.Run(fmt.Sprintf("period=%.1fs", period), func(b *testing.B) {
			ov := simgrid.DefaultOverhead()
			ov.MonitorPeriod = period
			var last float64
			for i := 0; i < b.N; i++ {
				last = simgrid.FTPBroadcast(p, 250, 100*mb, ov).Completion
			}
			b.ReportMetric(last, "completion_s")
		})
	}
}

// BenchmarkAblationMaxDataSchedule measures how the Algorithm 1 throttle
// trades per-sync cost against convergence: synchronizations needed for
// one host to absorb 128 data.
func BenchmarkAblationMaxDataSchedule(b *testing.B) {
	for _, maxDS := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("max=%d", maxDS), func(b *testing.B) {
			var rounds int
			for i := 0; i < b.N; i++ {
				s := scheduler.New()
				s.MaxDataSchedule = maxDS
				for j := 0; j < 128; j++ {
					d := data.Data{UID: data.NewUID(), Name: fmt.Sprintf("d%d", j)}
					s.Schedule(d, attr.Attribute{Name: "a", Replica: 1})
				}
				var cache []data.UID
				rounds = 0
				for len(cache) < 128 {
					r := s.Sync("host", cache)
					for _, f := range r.Fetch {
						cache = append(cache, f.Data.UID)
					}
					rounds++
					if rounds > 1000 {
						b.Fatal("did not converge")
					}
				}
			}
			b.ReportMetric(float64(rounds), "syncs_to_converge")
		})
	}
}

// BenchmarkAblationPieceSelection compares rarest-first with random piece
// selection on the real swarm protocol.
func BenchmarkAblationPieceSelection(b *testing.B) {
	content := make([]byte, 256*1024)
	for i := range content {
		content[i] = byte(i * 31)
	}
	for _, random := range []bool{false, true} {
		name := "rarest-first"
		if random {
			name = "random"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tr, err := swarm.NewTracker("127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				backend := repository.NewMemBackend()
				backend.Put("c", content)
				meta := swarm.NewMetainfo("c", content, 16*1024)
				seeder, err := swarm.NewSeeder(backend, meta, tr.Addr(), "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				leecher, err := swarm.NewLeecher(repository.NewMemBackend(), meta, tr.Addr(), "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				leecher.RandomPieces = random
				if err := leecher.Download(time.Minute); err != nil {
					b.Fatal(err)
				}
				leecher.Close()
				seeder.Close()
				tr.Close()
			}
		})
	}
}

// ---- Component micro-benchmarks ----

func BenchmarkAttrParse(b *testing.B) {
	src := `attr Genebase = { protocol = "bittorrent", lifetime = Collector, affinity = Sequence, replica = 4, ft = true }`
	for i := 0; i < b.N; i++ {
		if _, err := attr.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDHTLookup(b *testing.B) {
	ring := dht.NewRing(dht.WithSeed(5))
	for i := 0; i < 64; i++ {
		ring.AddNode(fmt.Sprintf("n%02d", i))
	}
	ring.StabilizeFully()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ring.Lookup(fmt.Sprintf("key%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulerSync(b *testing.B) {
	s := scheduler.New()
	for j := 0; j < 200; j++ {
		d := data.Data{UID: data.NewUID(), Name: fmt.Sprintf("d%d", j)}
		s.Schedule(d, attr.Attribute{Name: "a", Replica: 3, FaultTolerant: true})
	}
	// Steady-state host with a full cache.
	var cache []data.UID
	for len(cache) < 24 {
		r := s.Sync("host", cache)
		for _, f := range r.Fetch {
			cache = append(cache, f.Data.UID)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sync("host", cache)
	}
}

func BenchmarkRPCCallLocal(b *testing.B) {
	mux := rpc.NewMux()
	rpc.Register(mux, "echo", "Echo", func(x int) (int, error) { return x + 1, nil })
	c := rpc.NewLocalClient(mux, 0)
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out int
		if err := c.Call("echo", "Echo", i, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCCallTCP(b *testing.B) {
	mux := rpc.NewMux()
	rpc.Register(mux, "echo", "Echo", func(x int) (int, error) { return x + 1, nil })
	srv, err := rpc.Listen("127.0.0.1:0", mux)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := rpc.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out int
		if err := c.Call("echo", "Echo", i, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransferDownloadHTTP(b *testing.B) {
	f := newBenchTransferFixture(b)
	content := make([]byte, 1*1024*1024)
	d := data.NewFromBytes("bench", content)
	f.backend.Put(string(d.UID), content)
	loc := data.Locator{DataUID: d.UID, Protocol: "http", Host: f.httpAddr, Ref: string(d.UID)}
	engine := transfer.NewEngine(repository.NewMemBackend(), nil, "bench", 4)
	b.SetBytes(int64(len(content)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine.Backend().Delete(string(d.UID))
		if err := engine.Download(*d, loc).Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFailureTimeout sweeps the heartbeat period on the
// Figure 4 scenario (the detector fires after 3 missed heartbeats, so a
// shorter period detects failures sooner at the cost of more control
// traffic); the reported metric is the newcomers' mean waiting time,
// which tracks 3x the period.
func BenchmarkAblationFailureTimeout(b *testing.B) {
	p := testbed.DSLLab()
	for _, period := range []float64{1.5, 1.0, 0.5} {
		b.Run(fmt.Sprintf("heartbeat=%.1fs", period), func(b *testing.B) {
			var meanWait float64
			for i := 0; i < b.N; i++ {
				r := simgrid.FaultScenario(p, 4*mb, 5, 5, 20, period)
				total, n := 0.0, 0
				for _, e := range r.Events[5:] {
					total += e.DownloadStart - e.Arrival
					n++
				}
				if n > 0 {
					meanWait = total / float64(n)
				}
			}
			b.ReportMetric(meanWait, "mean_wait_s")
		})
	}
}

// BenchmarkWorkloadSearch measures the blastn-like kernel's scan rate.
func BenchmarkWorkloadSearch(b *testing.B) {
	base := workload.Genebase(1_000_000, 1)
	q := workload.SampleQueries(base, 1, 300, 0.01, 2)[0]
	b.SetBytes(int64(len(base)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := workload.Search(base, q.Seq, 200); len(hits) == 0 {
			b.Fatal("planted hit missed")
		}
	}
}
